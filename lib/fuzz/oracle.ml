(* Differential oracles for generated scenarios.

   One [run] executes the scenario's setup through the API layer (the
   same dispatch the shell uses), then cross-checks the full pipeline
   against every oracle that supports the composed definition:

     - semi-naive vs naive reachability fixpoint (always);
     - the unshared per-node derivation of [Baseline.Naive_translate]
       against the pre-TAKE instance (DAG schemas; set semantics, so both
       sides are value-deduplicated);
     - the LW90 object-at-a-time instantiation against the same instance
       (DAG schemas);
     - structural invariants: live connections join live tuples, and in
       the pre-TAKE instance every live non-root tuple has a live
       incoming connection;
     - lint cleanliness of every generated XNF statement;
     - metamorphic properties: a strengthened query yields a sub-instance
       (when every path restriction is monotone), TAKE projection of a
       full fetch equals the projecting fetch, and a result-cache hit
       equals the cold fetch.

   [mutation] injects a deliberate defect into the system-under-test
   caches after loading — the smoke test that proves divergences are
   detectable end to end. *)

open Relational
open Xnf
open Xnf_ast

type mutation = Drop_conn | Drop_tuple | Dict_swap

let mutation_name = function
  | Drop_conn -> "drop-conn"
  | Drop_tuple -> "drop-tuple"
  | Dict_swap -> "dict-swap"

let mutation_of_string = function
  | "drop-conn" -> Some Drop_conn
  | "drop-tuple" -> Some Drop_tuple
  | "dict-swap" -> Some Dict_swap
  | _ -> None

type divergence = { d_kind : string; d_detail : string }

type flags = {
  f_recursive : bool;
  f_sharing : bool;
  f_views : bool;
  f_using : bool;
  f_paths : bool;
  f_naive : bool;  (** unshared-derivation oracle compared *)
  f_lw90 : bool;
  f_mono : bool;  (** monotonicity property compared *)
  f_hash : bool;  (** strategy differential compared a batch-hash run *)
  f_adaptive : bool;  (** adaptive differential saw a mid-fixpoint switch fire *)
  f_advise : bool;  (** the plan-advisor purity guard ran *)
  f_dict : bool;  (** the dictionary round-trip oracle compared the instance *)
  f_mutated : bool;  (** the injected mutation found something to break *)
}

let no_flags =
  { f_recursive = false; f_sharing = false; f_views = false; f_using = false; f_paths = false;
    f_naive = false; f_lw90 = false; f_mono = false; f_hash = false; f_adaptive = false;
    f_advise = false; f_dict = false; f_mutated = false }

type outcome = { o_divs : divergence list; o_flags : flags }

(* ---- comparators (also used by the conformance suite) ---- *)

let node_extent cache name =
  Cache.live_tuples (Cache.node cache name)
  |> List.map Cache.row
  |> List.sort Row.compare

let conn_extent ?(attrs = true) cache name =
  let ei = Cache.edge cache name in
  Cache.conns_live ei
  |> List.map (fun c ->
         let p = Cache.row (Cache.tuple ei.Cache.ei_parent_node c.Cache.cn_parent) in
         let ch = Cache.row (Cache.tuple ei.Cache.ei_child_node c.Cache.cn_child) in
         let base = Row.concat p ch in
         if attrs then Row.concat base (Cache.conn_attrs c) else base)
  |> List.sort Row.compare

let dedupe sorted_rows =
  let rec go = function
    | a :: (b :: _ as rest) -> if Row.equal a b then go rest else a :: go rest
    | short -> short
  in
  go sorted_rows

let rows_diff ~what a b =
  if List.length a <> List.length b then
    Some (Printf.sprintf "%s: %d vs %d rows" what (List.length a) (List.length b))
  else begin
    match List.find_opt (fun (x, y) -> not (Row.equal x y)) (List.combine a b) with
    | Some (x, y) ->
      Some (Printf.sprintf "%s: row %s vs %s" what (Row.to_string x) (Row.to_string y))
    | None -> None
  end

(* every element of (sorted) [a] consumed by (sorted) [b] *)
let rows_subset ~what a b =
  let rec go a b =
    match a, b with
    | [], _ -> None
    | x :: _, [] -> Some (Printf.sprintf "%s: extra row %s" what (Row.to_string x))
    | x :: arest, y :: brest ->
      let c = Row.compare x y in
      if c = 0 then go arest brest
      else if c > 0 then go a brest
      else Some (Printf.sprintf "%s: extra row %s" what (Row.to_string x))
  in
  go a b

let sorted_names l = List.sort compare (List.map fst l)

let first_some f l = List.fold_left (fun acc x -> match acc with Some _ -> acc | None -> f x) None l

(** [compare_caches a b] is [None] when both caches hold the same
    components with identical extents and connection sets (attributes
    included), or a description of the first difference. *)
let compare_caches (a : Cache.t) (b : Cache.t) : string option =
  if sorted_names a.Cache.c_nodes <> sorted_names b.Cache.c_nodes then
    Some
      (Printf.sprintf "components differ: [%s] vs [%s]"
         (String.concat " " (sorted_names a.Cache.c_nodes))
         (String.concat " " (sorted_names b.Cache.c_nodes)))
  else if sorted_names a.Cache.c_edges <> sorted_names b.Cache.c_edges then
    Some
      (Printf.sprintf "relationships differ: [%s] vs [%s]"
         (String.concat " " (sorted_names a.Cache.c_edges))
         (String.concat " " (sorted_names b.Cache.c_edges)))
  else begin
    match
      first_some
        (fun (n, _) -> rows_diff ~what:("extent " ^ n) (node_extent a n) (node_extent b n))
        a.Cache.c_nodes
    with
    | Some d -> Some d
    | None ->
      first_some
        (fun (e, _) -> rows_diff ~what:("connections " ^ e) (conn_extent a e) (conn_extent b e))
        a.Cache.c_edges
  end

(** [subset_caches a b] checks that [a] is a sub-instance of [b]: same
    components, every extent row and connection of [a] also in [b]. *)
let subset_caches (a : Cache.t) (b : Cache.t) : string option =
  if sorted_names a.Cache.c_nodes <> sorted_names b.Cache.c_nodes
     || sorted_names a.Cache.c_edges <> sorted_names b.Cache.c_edges
  then Some "components differ"
  else begin
    match
      first_some
        (fun (n, _) -> rows_subset ~what:("extent " ^ n) (node_extent a n) (node_extent b n))
        a.Cache.c_nodes
    with
    | Some d -> Some d
    | None ->
      first_some
        (fun (e, _) -> rows_subset ~what:("connections " ^ e) (conn_extent a e) (conn_extent b e))
        a.Cache.c_edges
  end

(** [check_conn_liveness cache] verifies that every live connection joins
    two live tuples. *)
let check_conn_liveness (cache : Cache.t) : string option =
  first_some
    (fun (name, ei) ->
      first_some
        (fun (c : Cache.conn) ->
          let pt = Cache.tuple ei.Cache.ei_parent_node c.Cache.cn_parent in
          let ct = Cache.tuple ei.Cache.ei_child_node c.Cache.cn_child in
          if not pt.Cache.t_live then
            Some (Printf.sprintf "%s: live connection from dead parent tuple %d" name c.Cache.cn_parent)
          else if not ct.Cache.t_live then
            Some (Printf.sprintf "%s: live connection to dead child tuple %d" name c.Cache.cn_child)
          else None)
        (Cache.conns_live ei))
    cache.Cache.c_edges

(** [check_reachability cache] verifies the reachability invariant on a
    pre-TAKE instance: every live tuple of a node with incoming
    relationships has at least one live incoming connection. (Post-TAKE
    instances may legitimately violate this: evaluate-then-project can
    drop the justifying relationship.) *)
let check_reachability (cache : Cache.t) : string option =
  first_some
    (fun (name, ni) ->
      let incoming = List.filter (fun (_, ei) -> String.equal ei.Cache.ei_child name) cache.Cache.c_edges in
      if incoming = [] then None
      else
        first_some
          (fun (t : Cache.tuple) ->
            if List.exists (fun (_, ei) -> Cache.parents cache ei t.Cache.t_pos <> []) incoming
            then None
            else
              Some
                (Printf.sprintf "%s: live non-root tuple %d has no live incoming connection" name
                   t.Cache.t_pos))
          (Cache.live_tuples ni))
    cache.Cache.c_nodes

(* ---- mutation injection ---- *)

let apply_mutation (m : mutation) (cache : Cache.t) : bool =
  let last = function [] -> None | l -> Some (List.nth l (List.length l - 1)) in
  match m with
  | Drop_conn ->
    List.fold_left
      (fun done_ (_, ei) ->
        if done_ then done_
        else begin
          match last (Cache.conns_live ei) with
          | Some c ->
            Cache.set_conn_live ei c.Cache.cn_idx false;
            true
          | None -> false
        end)
      false cache.Cache.c_edges
  | Drop_tuple ->
    List.fold_left
      (fun done_ (name, ni) ->
        if done_ || Co_schema.incoming cache.Cache.c_def name = [] then done_
        else begin
          match last (Cache.live_tuples ni) with
          | Some t ->
            t.Cache.t_live <- false;
            true
          | None -> false
        end)
      false cache.Cache.c_nodes
  | Dict_swap ->
    (* corrupt one encoded cell to a different (valid) dictionary id: the
       decoded comparators must see the changed value and diverge *)
    let poison = Dict.encode (Value.Str "\000fuzz-dict-swap") in
    List.fold_left
      (fun done_ (_, ni) ->
        if done_ then done_
        else begin
          match last (Cache.live_tuples ni) with
          | Some t when Array.length t.Cache.t_row > 0 ->
            t.Cache.t_row <-
              Array.mapi
                (fun i id -> if i = 0 then (if id = poison then Dict.null_id else poison) else id)
                t.Cache.t_row;
            true
          | _ -> false
        end)
      false cache.Cache.c_nodes

(* ---- monotonicity eligibility ---- *)

(* a restriction predicate is monotone when shrinking the instance can
   only shrink the set of qualifying tuples: every path atom must appear
   in positive polarity and COUNT(path) only as a lower bound *)
let rec monotone_pred ~pos (e : xexpr) : bool =
  match e with
  | X_and (a, b) | X_or (a, b) -> monotone_pred ~pos a && monotone_pred ~pos b
  | X_not a -> monotone_pred ~pos:(not pos) a
  | X_exists_path _ -> pos
  | X_count_path _ -> false
  | X_cmp (op, X_count_path _, rhs) ->
    pos && (not (has_path rhs)) && (op = Expr.Ge || op = Expr.Gt)
  | X_cmp (op, lhs, X_count_path _) ->
    pos && (not (has_path lhs)) && (op = Expr.Le || op = Expr.Lt)
  | X_cmp (_, a, b) | X_arith (_, a, b) | X_like (a, b) -> not (has_path a || has_path b)
  | X_neg a | X_is_null a | X_is_not_null a -> not (has_path a)
  | X_in_list (a, items) -> not (List.exists has_path (a :: items))
  | X_fn (_, args) -> not (List.exists has_path args)
  | X_col _ | X_lit _ | X_param _ -> true

let monotone_restrictions restrs =
  List.for_all
    (fun r ->
      match r with
      | R_node { rn_pred; _ } -> monotone_pred ~pos:true rn_pred
      | R_edge { re_pred; _ } -> monotone_pred ~pos:true re_pred)
    restrs

(* ---- LW90 forest flattening ---- *)

let lw90_collect (objs : Baseline.Lw90.obj list) =
  let nodes : (string, Row.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let edges : (string, Row.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let push tbl key row =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := row :: !r
    | None -> Hashtbl.add tbl key (ref [ row ])
  in
  let rec walk (o : Baseline.Lw90.obj) =
    push nodes o.Baseline.Lw90.o_node o.Baseline.Lw90.o_row;
    List.iter
      (fun (ename, children) ->
        List.iter
          (fun (ch : Baseline.Lw90.obj) ->
            push edges ename (Row.concat o.Baseline.Lw90.o_row ch.Baseline.Lw90.o_row);
            walk ch)
          children)
      o.Baseline.Lw90.o_children
  in
  List.iter walk objs;
  let get tbl key =
    match Hashtbl.find_opt tbl key with
    | Some r -> dedupe (List.sort Row.compare !r)
    | None -> []
  in
  (get nodes, get edges)

(* ---- the oracle run ---- *)

let m_cases = Obs.Metrics.counter "fuzz.cases"
let m_divergences = Obs.Metrics.counter "fuzz.divergences"

let run ?(advise = false) ?mutation ?extra_restr (sc : Gen.scenario) : outcome =
  Obs.Metrics.incr m_cases;
  let divs = ref [] in
  let add kind detail = divs := { d_kind = kind; d_detail = detail } :: !divs in
  let guard kind f = try f () with e -> add kind ("exception: " ^ Printexc.to_string e) in
  let finish flags =
    let o_divs = List.rev !divs in
    List.iter (fun _ -> Obs.Metrics.incr m_divergences) o_divs;
    { o_divs; o_flags = flags }
  in
  let db = Db.create () in
  let api = Api.create db in
  let reg = Api.registry api in
  (* setup: DDL, rows, indexes, views — XNF view definitions are linted
     before they are registered *)
  List.iter
    (fun stmt ->
      guard "setup" (fun () ->
          (match Xnf_parser.parse_stmt stmt with
          | X_create_view _ ->
            let ds = Check.Lint.lint_string db reg stmt in
            if Diag.has_errors ds then
              add "lint"
                (Printf.sprintf "view definition: %s"
                   (Diag.to_string (List.find Diag.is_error ds)))
          | _ -> ());
          ignore (Api.exec api stmt)))
    sc.sc_setup;
  if !divs <> [] then finish no_flags
  else begin
    match Xnf_parser.parse_query sc.sc_query with
    | exception e ->
      add "parse" ("exception: " ^ Printexc.to_string e);
      finish no_flags
    | q -> begin
      guard "lint" (fun () ->
          let ds = Check.Lint.lint_string db reg sc.sc_query in
          if Diag.has_errors ds then add "lint" (Diag.to_string (List.find Diag.is_error ds)));
      match View_registry.compose reg q with
      | exception e ->
        add "compose" ("exception: " ^ Printexc.to_string e);
        finish no_flags
      | def, path_restrs, _take -> begin
        let flags =
          { no_flags with
            f_recursive = Co_schema.is_recursive def;
            f_sharing = Co_schema.has_schema_sharing def;
            f_views = List.exists (function B_view _ -> true | _ -> false) q.q_out_of;
            f_using = List.exists (fun e -> e.Co_schema.ed_using <> None) def.Co_schema.co_edges;
            f_paths = path_restrs <> [] }
        in
        match Api.fetch api q with
        | exception e ->
          add "fetch" ("exception: " ^ Printexc.to_string e);
          finish flags
        | sut -> begin
          (* the injected defect goes into the delivered instance only:
             there the fixpoint, take-commute and refetch oracles always
             recompute an unmutated comparison point *)
          let flags =
            { flags with
              f_mutated =
                (match mutation with Some m -> apply_mutation m sut | None -> false) }
          in
          (* structural invariant on the delivered instance *)
          (match check_conn_liveness sut with
          | Some d -> add "reachability" d
          | None -> ());
          (* oracle 1: naive reachability fixpoint, full pipeline *)
          guard "fixpoint" (fun () ->
              let nf = Api.fetch ~fixpoint:Translate.Naive api q in
              match compare_caches sut nf with
              | Some d -> add "fixpoint" d
              | None -> ());
          (* the pre-TAKE, pre-path-restriction instance the per-node
             derivation oracles are defined on *)
          let pre = ref None in
          guard "pre" (fun () ->
              pre := Some (Translate.fetch_def ~fixpoint:Translate.Semi_naive db def []));
          let flags =
            match !pre with
            | None -> flags
            | Some pre -> begin
              (match check_conn_liveness pre with
              | Some d -> add "reachability" d
              | None -> ());
              (match check_reachability pre with
              | Some d -> add "reachability" d
              | None -> ());
              (* dictionary oracle: the encoded instance must be canonical —
                 decoding a row and re-encoding it reproduces the identical
                 id array, so the encoded hot path and a decoded oracle
                 agree on every cell (ids are stable and exact) *)
              let f_dict = ref false in
              guard "dict" (fun () ->
                  List.iter
                    (fun (name, ni) ->
                      List.iter
                        (fun (t : Cache.tuple) ->
                          f_dict := true;
                          if Row.encode (Cache.row t) <> t.Cache.t_row then
                            add "dict"
                              (Printf.sprintf "%s: tuple %d decode/encode not canonical: %s" name
                                 t.Cache.t_pos
                                 (Row.to_string (Cache.row t))))
                        (Cache.live_tuples ni))
                    pre.Cache.c_nodes;
                  List.iter
                    (fun (name, ei) ->
                      List.iter
                        (fun (c : Cache.conn) ->
                          if Row.encode (Cache.conn_attrs c) <> c.Cache.cn_attrs then
                            add "dict"
                              (Printf.sprintf "%s: connection %d attrs not canonical" name
                                 c.Cache.cn_idx))
                        (Cache.conns_live ei))
                    pre.Cache.c_edges);
              (* strategy differential: re-run the fetch forcing each edge
                 access path; indexed, batch-hash and generic executions
                 must deliver identical instances (same comparator as the
                 naive oracle) *)
              let f_hash = ref false in
              List.iter
                (fun (label, force) ->
                  let kind = "strategy-" ^ label in
                  guard kind (fun () ->
                      let alt =
                        Translate.fetch_def ~force ~fixpoint:Translate.Semi_naive db def []
                      in
                      (match compare_caches pre alt with
                      | Some d -> add kind d
                      | None -> ());
                      if force = Translate.S_hash then f_hash := true))
                [ ("indexed", Translate.S_indexed); ("hash", Translate.S_hash);
                  ("generic", Translate.S_generic) ];
              (* adaptive differential: ANALYZE so compile_def cost-picks,
                 then re-run with aggressive switching thresholds so
                 mid-fixpoint switches actually fire — switched executions
                 must still deliver the identical instance. ANALYZE only
                 writes statistics (no version bumps), so the oracles
                 after this block are unaffected. *)
              let f_adaptive = ref false in
              guard "strategy-adaptive" (fun () ->
                  ignore (Db.exec db "ANALYZE");
                  let factor0 = Translate.adaptive_factor ()
                  and min0 = Translate.adaptive_min_rows () in
                  Fun.protect
                    ~finally:(fun () ->
                      Translate.set_adaptive_factor factor0;
                      Translate.set_adaptive_min_rows min0)
                    (fun () ->
                      Translate.set_adaptive_factor 0.5;
                      Translate.set_adaptive_min_rows 1;
                      let cp = Translate.compile_def db def in
                      let alt = Translate.execute_def ~fixpoint:Translate.Semi_naive db cp [] in
                      (match compare_caches pre alt with
                      | Some d -> add "strategy-adaptive" d
                      | None -> ());
                      f_adaptive := Translate.switches cp <> []));
              (* oracle 2: unshared per-node derivations (DAG only);
                 callers classify up front via the shared predicate *)
              let f_naive =
                if Baseline.Naive_translate.supported def then begin
                  guard "unshared" (fun () ->
                      let nres = Baseline.Naive_translate.extract_unshared db def in
                      (match
                         first_some
                           (fun (name, rows) ->
                             rows_diff ~what:("extent " ^ name)
                               (dedupe (node_extent pre name))
                               (List.sort Row.compare rows))
                           nres.Baseline.Naive_translate.node_rows
                       with
                      | Some d -> add "unshared" d
                      | None -> ());
                      match
                        first_some
                          (fun (name, rows) ->
                            rows_diff ~what:("connections " ^ name)
                              (dedupe (conn_extent ~attrs:false pre name))
                              (List.sort Row.compare rows))
                          nres.Baseline.Naive_translate.edge_rows
                      with
                      | Some d -> add "unshared" d
                      | None -> ());
                  true
                end
                else begin
                  (* the classifier and the implementation must agree *)
                  guard "unshared-classifier" (fun () ->
                      match Baseline.Naive_translate.extract_unshared db def with
                      | _ ->
                        add "unshared-classifier"
                          "extract_unshared succeeded on a schema classified unsupported"
                      | exception Baseline.Naive_translate.Unsupported _ -> ());
                  false
                end
              in
              (* oracle 3: LW90 object-at-a-time instantiation (DAG only) *)
              let f_lw90 =
                if Baseline.Lw90.supported def then begin
                  guard "lw90" (fun () ->
                      let nav = Baseline.Sql_navigator.create db in
                      let objs = Baseline.Lw90.instantiate nav def in
                      let node_rows, edge_rows = lw90_collect objs in
                      (match
                         first_some
                           (fun (nd : Co_schema.node_def) ->
                             let name = nd.Co_schema.nd_name in
                             rows_diff ~what:("extent " ^ name)
                               (dedupe (node_extent pre name))
                               (node_rows name))
                           def.Co_schema.co_nodes
                       with
                      | Some d -> add "lw90" d
                      | None -> ());
                      match
                        first_some
                          (fun (ed : Co_schema.edge_def) ->
                            let name = ed.Co_schema.ed_name in
                            rows_diff ~what:("connections " ^ name)
                              (dedupe (conn_extent ~attrs:false pre name))
                              (edge_rows name))
                          def.Co_schema.co_edges
                      with
                      | Some d -> add "lw90" d
                      | None -> ());
                  true
                end
                else false
              in
              { flags with f_naive; f_lw90; f_hash = !f_hash; f_adaptive = !f_adaptive;
                f_dict = !f_dict }
            end
          in
          (* metamorphic: a strengthened query yields a sub-instance *)
          let flags =
            match extra_restr with
            | Some r when monotone_restrictions path_restrs ->
              guard "monotonic" (fun () ->
                  let plus = Api.fetch api { q with q_where = q.q_where @ [ r ] } in
                  match subset_caches plus sut with
                  | Some d -> add "monotonic" d
                  | None -> ());
              { flags with f_mono = true }
            | _ -> flags
          in
          (* metamorphic: TAKE of a full fetch equals the projecting fetch
             (evaluate-then-project; with TAKE * this is a determinism
             check) *)
          guard "take-commute" (fun () ->
              let star = Api.fetch api { q with q_take = Take_star } in
              let alt = Translate.finalize db (Translate.apply_take star q.q_take) in
              match compare_caches sut alt with
              | Some d -> add "take-commute" d
              | None -> ());
          (* metamorphic: a result-cache hit equals the cold fetch *)
          guard "refetch" (fun () ->
              Api.set_result_cache api 4;
              let h0 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
              ignore (Api.fetch_string api sc.sc_query);
              let hot = Api.fetch_string api sc.sc_query in
              let h1 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
              if h1 - h0 < 1 then add "refetch" "second fetch missed the result cache";
              (match compare_caches hot sut with
              | Some d -> add "refetch" d
              | None -> ());
              Api.set_result_cache api 0);
          (* metamorphic: a warm (cached-plan) fetch equals the cold fetch *)
          guard "plancache" (fun () ->
              Api.set_plan_cache api 4;
              let h0 = Obs.Metrics.counter_get "xnf.plancache.hits" in
              ignore (Api.fetch_string api sc.sc_query);
              let warm = Api.fetch_string api sc.sc_query in
              let h1 = Obs.Metrics.counter_get "xnf.plancache.hits" in
              if h1 - h0 < 1 then add "plancache" "second fetch missed the plan cache";
              (match compare_caches warm sut with
              | Some d -> add "plancache" d
              | None -> ());
              Api.set_plan_cache api 0);
          (* observability: re-running with query statistics + slow-query
             logging enabled delivers the identical instance, and scanning
             sys.* views between the cold and warm fetch neither perturbs
             the result nor spoils result-cache validity *)
          guard "querystats" (fun () ->
              let saved = Obs.Query_stats.slowlog_ms () in
              Obs.Query_stats.set_slowlog_ms (Some 0.);
              Api.set_result_cache api 4;
              let cold = Api.fetch_string api sc.sc_query in
              (match compare_caches cold sut with
              | Some d -> add "querystats" d
              | None -> ());
              ignore (Api.exec api "SELECT name, kind, value FROM sys.metrics");
              ignore (Api.exec api "SELECT s.fingerprint, s.calls, s.mean_ms FROM sys.statements s");
              ignore (Api.exec api "SELECT t.name, t.rows FROM sys.tables t");
              let h0 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
              let warm = Api.fetch_string api sc.sc_query in
              let h1 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
              if h1 - h0 < 1 then add "querystats" "sys.* scan spoiled result-cache validity";
              (match compare_caches warm sut with
              | Some d -> add "querystats" d
              | None -> ());
              Api.set_result_cache api 0;
              Obs.Query_stats.set_slowlog_ms saved);
          (* plan-advisor purity: advising never raises, the advisory set
             is identical on a cold-compiled plan vs a plan-cache-hit
             plan, and running the advisor (including the drift detector)
             perturbs neither fetch results nor result-cache validity *)
          let flags =
            if not advise then flags
            else begin
              guard "advise" (fun () ->
                  let rendered plan =
                    List.map Diag.to_string (Check.Plan_advisor.diags (Check.Plan_advisor.analyze db plan))
                  in
                  let cold_plan = Fetch_plan.compile db reg q in
                  let cold = rendered cold_plan in
                  Api.set_plan_cache api 4;
                  ignore (Api.fetch_string api sc.sc_query);
                  ignore (Api.fetch_string api sc.sc_query);
                  let cached_plan =
                    match Api.plans api with (_, p) :: _ -> p | [] -> cold_plan
                  in
                  let warm = rendered cached_plan in
                  if cold <> warm then
                    add "advise"
                      (Printf.sprintf "advisory set differs cold vs plan-cache hit: [%s] vs [%s]"
                         (String.concat " | " cold) (String.concat " | " warm));
                  (* purity: a fetch after advising still equals the SUT
                     instance and still hits the result cache *)
                  Api.set_result_cache api 4;
                  ignore (Api.fetch_string api sc.sc_query);
                  let before_log = List.length (Api.advisories api) in
                  ignore (rendered cold_plan);
                  ignore (Check.Plan_advisor.drift db cold_plan sut);
                  if List.length (Api.advisories api) <> before_log then
                    add "advise" "bare analyze/drift wrote to the session advisory log";
                  let h0 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
                  let after = Api.fetch_string api sc.sc_query in
                  let h1 = Obs.Metrics.counter_get "xnf.fetchcache.hits" in
                  if h1 - h0 < 1 then add "advise" "advising spoiled result-cache validity";
                  (match compare_caches after sut with
                  | Some d -> add "advise" d
                  | None -> ());
                  Api.set_result_cache api 0;
                  Api.set_plan_cache api 0);
              { flags with f_advise = true }
            end
          in
          finish flags
        end
      end
    end
  end
