(** Replayable corpus entries: one line-oriented [.xnf] file per failing
    case ([--] comments, setup statements in order, the query under test
    last). *)

(** [write ~dir ?kinds sc] writes [sc] under [dir] (created on demand) as
    [case-<label>.xnf], recording the divergence [kinds] in a comment;
    returns the path. *)
val write : dir:string -> ?kinds:string list -> Gen.scenario -> string

(** [load path] parses a corpus entry back into a scenario.
    @raise Invalid_argument on an empty file. *)
val load : string -> Gen.scenario

(** [files dir] lists corpus entries under [dir], sorted; [[]] when the
    directory does not exist. *)
val files : string -> string list
