(* Random composite-object scenarios for the differential fuzzer.

   A generated case is fully structured — base tables with materialized
   rows, secondary indexes, XNF view definitions and the query under test
   as an AST — and only becomes concrete syntax in [render]. The oracle
   always consumes the rendered text, so every case exercises the real
   lexer, parser and binder, and the shrinker can transform the structure
   without re-deriving predicates.

   Schema shape: n node tables t0..t(n-1), each with the same column set
   (k INTEGER PRIMARY KEY, f, h, g INTEGER, s VARCHAR). A spanning set of
   edges keeps every node reachable from n0 (parents always have a lower
   index), then extra edges add schema sharing, M:N USING link tables,
   WITH ATTRIBUTES, back edges (cycles) and self loops. Node derivations
   are [SELECT * FROM ti], sometimes wrapped in a WHERE restriction;
   restrictions mix SQL node/edge predicates with reduced and qualified
   path expressions; views cover prefixes of the node set (views over
   views); TAKE is * or a random structural projection. *)

open Relational
open Xnf
open Xnf_ast
module Rng = Workload.Rng

type config = {
  max_nodes : int;
  max_rows : int;
  allow_recursive : bool;
  allow_views : bool;
  allow_paths : bool;
}

let default =
  { max_nodes = 5; max_rows = 10; allow_recursive = true; allow_views = true; allow_paths = true }

type table = {
  tb_name : string;
  tb_ddl : string;
  tb_rows : Value.t array list;
}

type case = {
  cs_label : string;
  cs_tables : table list;
  cs_indexes : (string * string) list;  (* table, column *)
  cs_views : (string * query) list;  (* definition order *)
  cs_query : query;
}

type scenario = { sc_label : string; sc_setup : string list; sc_query : string }

(* internal edge bookkeeping while generating; the case itself only keeps
   the resulting AST bindings *)
type gedge = {
  g_name : string;
  g_parent : int;
  g_child : int;
  g_pvar : string option;
  g_cvar : string option;
  g_using : (string * string) option;
  g_attrs : (Sql_ast.expr * string) list;
  g_pred : Sql_ast.expr;
}

let node_name i = "n" ^ string_of_int i
let tbl_name i = "t" ^ string_of_int i
let ecol q c = Sql_ast.E_col (Some q, c)
let eint i = Sql_ast.E_lit (Value.Int i)
let eq a b = Sql_ast.E_cmp (Expr.Eq, a, b)

let node_ddl i =
  Printf.sprintf
    "CREATE TABLE %s (k INTEGER PRIMARY KEY, f INTEGER, h INTEGER, g INTEGER, s VARCHAR(4))"
    (tbl_name i)

let link_ddl name = Printf.sprintf "CREATE TABLE %s (lp INTEGER, lc INTEGER, w INTEGER)" name

(* generate one edge's predicate over the role aliases *)
let edge_binding (e : gedge) : binding =
  B_edge
    { be_name = e.g_name; be_parent = node_name e.g_parent; be_parent_var = e.g_pvar;
      be_child = node_name e.g_child; be_child_var = e.g_cvar; be_attrs = e.g_attrs;
      be_using = e.g_using; be_pred = e.g_pred }

let generate ?(config = default) ~seed ~index () : case =
  let rng = Rng.create (((seed * 1_000_003) lxor (index * 8191)) + index + 1) in
  let n = Rng.in_range rng 2 (max 2 config.max_nodes) in
  let nrows = Array.init n (fun _ -> Rng.in_range rng 2 (max 2 config.max_rows)) in
  let maxk = Array.fold_left max 0 nrows in
  (* --- edges --- *)
  let fk_parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  let ecount = ref 0 in
  let links = ref [] in
  let lcount = ref 0 in
  let fresh_edge_name () =
    let name = "e" ^ string_of_int !ecount in
    incr ecount;
    name
  in
  let alias pvar cvar p c =
    (Option.value ~default:(node_name p) pvar, Option.value ~default:(node_name c) cvar)
  in
  let extra_conjunct ca pred =
    if Rng.bool rng 0.2 then Sql_ast.E_and (pred, Sql_ast.E_cmp (Expr.Le, ecol ca "g", eint (Rng.in_range rng 1 4)))
    else pred
  in
  let mk_plain_edge p c kind =
    let name = fresh_edge_name () in
    let self = p = c in
    let pvar, cvar =
      if self then (Some "sp", Some "sc")
      else if Rng.bool rng 0.2 then (Some ("a" ^ name ^ "p"), Some ("a" ^ name ^ "c"))
      else (None, None)
    in
    let pa, ca = alias pvar cvar p c in
    let pred =
      match kind with
      | `Fk -> eq (ecol pa "k") (ecol ca "f")
      | `Back -> eq (ecol pa "k") (ecol ca "h")
      | `G -> eq (ecol pa "g") (ecol ca "g")
      | `S -> eq (ecol pa "s") (ecol ca "s")
    in
    { g_name = name; g_parent = p; g_child = c; g_pvar = pvar; g_cvar = cvar; g_using = None;
      g_attrs = []; g_pred = extra_conjunct ca pred }
  in
  let mk_using_edge p c =
    let name = fresh_edge_name () in
    let link = "u" ^ string_of_int !lcount in
    incr lcount;
    let link_rows = Rng.int rng (2 * max nrows.(p) nrows.(c) + 1) in
    let rows =
      List.init link_rows (fun _ ->
          [| Value.Int (Rng.int rng (nrows.(p) + 2)); Value.Int (Rng.int rng (nrows.(c) + 2));
             Value.Int (Rng.int rng 6) |])
    in
    links := !links @ [ { tb_name = link; tb_ddl = link_ddl link; tb_rows = rows } ];
    let self = p = c in
    let pvar, cvar = if self then (Some "sp", Some "sc") else (None, None) in
    let pa, ca = alias pvar cvar p c in
    let pred = Sql_ast.E_and (eq (ecol pa "k") (ecol "u" "lp"), eq (ecol ca "k") (ecol "u" "lc")) in
    let attrs = if Rng.bool rng 0.5 then [ (ecol "u" "w", "w") ] else [] in
    { g_name = name; g_parent = p; g_child = c; g_pvar = pvar; g_cvar = cvar;
      g_using = Some (link, "u"); g_attrs = attrs; g_pred = pred }
  in
  (* spanning edges: every node i >= 1 hangs off a lower-indexed parent *)
  let spanning =
    List.init (n - 1) (fun j ->
        let i = j + 1 in
        let kind =
          if Rng.bool rng 0.6 then `Fk else if Rng.bool rng 0.6 then `G else `S
        in
        mk_plain_edge fk_parent.(i) i kind)
  in
  (* extra edges: sharing, M:N, back edges, self loops *)
  let extras =
    List.filter_map
      (fun _ ->
        let a = Rng.int rng n in
        let b = 1 + Rng.int rng (n - 1) in
        if a = b then
          (* never a self loop on node 0: it must stay a root (XNF010) *)
          if a > 0 && config.allow_recursive && Rng.bool rng 0.5 then
            Some (mk_plain_edge a a `Back)
          else None
        else begin
          let p, c = if a < b || config.allow_recursive then (a, b) else (b, a) in
          if Rng.bool rng 0.45 then Some (mk_using_edge p c)
          else Some (mk_plain_edge p c (if Rng.bool rng 0.55 then `Back else `G))
        end)
      (List.init (Rng.int rng 3) Fun.id)
  in
  let edges = spanning @ extras in
  (* --- base rows --- *)
  let node_tables =
    List.init n (fun i ->
        let rows =
          List.init nrows.(i) (fun k ->
              let f =
                if i = 0 then Value.Null
                else if Rng.bool rng 0.15 then Value.Null
                else if Rng.bool rng 0.1 then Value.Int (nrows.(fk_parent.(i)) + 1 + Rng.int rng 2)
                else Value.Int (Rng.int rng nrows.(fk_parent.(i)))
              in
              let h = if Rng.bool rng 0.25 then Value.Null else Value.Int (Rng.int rng (maxk + 2)) in
              [| Value.Int k; f; h; Value.Int (Rng.int rng 5);
                 Value.Str (String.make 1 (Char.chr (Char.code 'a' + Rng.int rng 3))) |])
        in
        { tb_name = tbl_name i; tb_ddl = node_ddl i; tb_rows = rows })
  in
  (* --- indexes: flip edge probes between indexed and generic --- *)
  let node_indexes =
    List.filter_map
      (fun i ->
        if Rng.bool rng 0.3 then Some (tbl_name i, Rng.choice rng [| "f"; "h"; "g"; "s" |])
        else None)
      (List.init n Fun.id)
  in
  let link_indexes =
    List.filter_map (fun t -> if Rng.bool rng 0.5 then Some (t.tb_name, "lp") else None) !links
  in
  (* --- derivations --- *)
  let derivation i =
    if Rng.bool rng 0.25 then
      Sql_ast.simple_select [ Sql_ast.Sel_star ]
        [ Sql_ast.From_table (tbl_name i, None) ]
        (Some (Sql_ast.E_cmp (Expr.Le, Sql_ast.E_col (None, "g"), eint (Rng.in_range rng 1 4))))
    else Sql_ast.select_star_from (tbl_name i)
  in
  let derivations = Array.init n derivation in
  let node_binding i = B_node { bn_name = node_name i; bn_query = derivations.(i) } in
  (* --- restriction generators --- *)
  let ucount = ref 0 in
  let fresh u = incr ucount; u ^ string_of_int !ucount in
  let gen_node_sql_restr ~node_pool =
    let i = Rng.choice rng node_pool in
    let var = if Rng.bool rng 0.5 then Some (fresh "x") else None in
    let q = Option.value ~default:(node_name i) var in
    let pred =
      match Rng.int rng 4 with
      | 0 -> X_cmp (Expr.Ge, X_col (Some q, "g"), X_lit (Value.Int (Rng.int rng 4)))
      | 1 -> X_cmp (Expr.Le, X_col (Some q, "g"), X_lit (Value.Int (Rng.in_range rng 1 4)))
      | 2 -> X_cmp (Expr.Eq, X_col (Some q, "s"), X_lit (Value.Str (String.make 1 (Char.chr (Char.code 'a' + Rng.int rng 3)))))
      | _ -> X_is_not_null (X_col (Some q, "h"))
    in
    R_node { rn_node = node_name i; rn_var = var; rn_pred = pred }
  in
  let gen_edge_sql_restr ~edge_pool =
    let e = Rng.choice rng edge_pool in
    let pred =
      if Rng.bool rng 0.6 then
        X_cmp (Expr.Le, X_col (Some "rp", "g"),
               X_arith (Expr.Add, X_col (Some "rc", "g"), X_lit (Value.Int (Rng.int rng 4))))
      else X_cmp (Expr.Ne, X_col (Some "rp", "k"), X_col (Some "rc", "k"))
    in
    R_edge { re_edge = e.g_name; re_parent_var = "rp"; re_child_var = "rc"; re_pred = pred }
  in
  let gen_path_restr ~path_pool ~all_edges =
    let e = Rng.choice rng path_pool in
    let pn = node_name e.g_parent and cn = node_name e.g_child in
    let var = fresh "w" in
    let set_rooted = Rng.bool rng 0.15 in
    let start = if set_rooted then pn else var in
    let qual_step () =
      let z = fresh "z" in
      Step_node
        { sn_node = cn; sn_var = Some z;
          sn_pred = Some (X_cmp (Expr.Gt, X_col (Some z, "g"), X_lit (Value.Int (Rng.int rng 4)))) }
    in
    let two_hop =
      List.filter (fun e2 -> e2.g_parent = e.g_child && e2.g_parent <> e2.g_child) all_edges
    in
    let steps =
      match Rng.int rng (if two_hop = [] then 3 else 4) with
      | 0 -> [ Step_edge e.g_name ]  (* reduced *)
      | 1 -> [ Step_edge e.g_name; qual_step () ]  (* qualified *)
      | 2 -> [ Step_edge e.g_name; Step_node { sn_node = cn; sn_var = None; sn_pred = None } ]
      | _ ->
        let e2 = Rng.choice rng (Array.of_list two_hop) in
        [ Step_edge e.g_name; Step_node { sn_node = cn; sn_var = None; sn_pred = None };
          Step_edge e2.g_name ]
    in
    let p = { p_start = start; p_steps = steps } in
    let pred =
      match Rng.int rng 3 with
      | 0 -> X_cmp (Expr.Ge, X_count_path p, X_lit (Value.Int (1 + Rng.int rng 2)))
      | 1 -> X_exists_path p
      | _ -> X_not (X_exists_path p)
    in
    R_node { rn_node = pn; rn_var = Some var; rn_pred = pred }
  in
  (* --- views over prefixes of the node set (views over views) --- *)
  let bounds =
    if config.allow_views && n >= 3 && Rng.bool rng 0.4 then begin
      let m1 = Rng.in_range rng 2 (n - 1) in
      if m1 < n - 1 && Rng.bool rng 0.35 then [ m1; Rng.in_range rng (m1 + 1) (n - 1) ]
      else [ m1 ]
    end
    else []
  in
  let layer_of e =
    (* index of the first bound covering both endpoints; length bounds = main query *)
    let m = 1 + max e.g_parent e.g_child in
    let rec go i = function
      | [] -> List.length bounds
      | b :: rest -> if m <= b then i else go (i + 1) rest
    in
    go 0 bounds
  in
  let view_name i = "fzv" ^ string_of_int i in
  let views =
    List.mapi
      (fun li m ->
        let lo = if li = 0 then 0 else List.nth bounds (li - 1) in
        let nodes = List.init (m - lo) (fun j -> node_binding (lo + j)) in
        let es = List.filter (fun e -> layer_of e = li) edges in
        let out_of =
          (if li = 0 then [] else [ B_view (view_name (li - 1)) ])
          @ nodes @ List.map edge_binding es
        in
        let where =
          if Rng.bool rng 0.35 then begin
            let node_pool = Array.init m Fun.id in
            let path_pool =
              Array.of_list
                (List.filter
                   (fun e -> e.g_parent <> e.g_child && layer_of e <= li)
                   edges)
            in
            if config.allow_paths && Array.length path_pool > 0 && Rng.bool rng 0.3 then
              (* only edges already visible in this layer may extend paths *)
              [ gen_path_restr ~path_pool
                  ~all_edges:(List.filter (fun e -> layer_of e <= li) edges) ]
            else [ gen_node_sql_restr ~node_pool ]
          end
          else []
        in
        (view_name li, { q_out_of = out_of; q_where = where; q_take = Take_star }))
      bounds
  in
  let covered = match List.rev bounds with [] -> 0 | m :: _ -> m in
  (* --- the query under test --- *)
  let main_nodes = List.init (n - covered) (fun j -> node_binding (covered + j)) in
  let main_edges = List.filter (fun e -> layer_of e = List.length bounds) edges in
  let out_of =
    (if covered = 0 then [] else [ B_view (view_name (List.length bounds - 1)) ])
    @ main_nodes @ List.map edge_binding main_edges
  in
  let node_pool = Array.init n Fun.id in
  let edge_pool = Array.of_list edges in
  let path_pool = Array.of_list (List.filter (fun e -> e.g_parent <> e.g_child) edges) in
  let where =
    List.filter_map
      (fun _ ->
        match Rng.int rng 3 with
        | 0 -> Some (gen_node_sql_restr ~node_pool)
        | 1 when Array.length edge_pool > 0 -> Some (gen_edge_sql_restr ~edge_pool)
        | _ when config.allow_paths && Array.length path_pool > 0 ->
          Some (gen_path_restr ~path_pool ~all_edges:edges)
        | _ -> Some (gen_node_sql_restr ~node_pool))
      (List.init (Rng.int rng 3) Fun.id)
  in
  let take =
    if Rng.bool rng 0.65 then Take_star
    else begin
      let kept = List.filter (fun _ -> Rng.bool rng 0.7) (List.init n Fun.id) in
      let kept = if kept = [] then [ Rng.int rng n ] else kept in
      let node_items =
        List.map
          (fun i ->
            let cols =
              if Rng.bool rng 0.3 then begin
                let cs = List.filter (fun _ -> Rng.bool rng 0.5) [ "k"; "f"; "h"; "g"; "s" ] in
                Take_cols (if cs = [] then [ "k" ] else cs)
              end
              else Take_all_cols
            in
            Take_node (node_name i, cols))
          kept
      in
      let edge_items =
        List.filter_map
          (fun e ->
            if List.mem e.g_parent kept && List.mem e.g_child kept && Rng.bool rng 0.75 then
              Some (Take_edge e.g_name)
            else None)
          edges
      in
      Take_items (node_items @ edge_items)
    end
  in
  { cs_label = Printf.sprintf "%d-%d" seed index;
    cs_tables = node_tables @ !links;
    cs_indexes = node_indexes @ link_indexes;
    cs_views = views;
    cs_query = { q_out_of = out_of; q_where = where; q_take = take } }

(* a strengthening restriction for the monotonicity check: node n0 always
   exists in the composed definition and every generated table has g *)
let mono_restriction (case : case) : restriction =
  let threshold = 1 + (String.length case.cs_label mod 3) in
  R_node
    { rn_node = "n0"; rn_var = Some "mzz";
      rn_pred = X_cmp (Expr.Ge, X_col (Some "mzz", "g"), X_lit (Value.Int threshold)) }

let insert_stmt tb (row : Value.t array) =
  Printf.sprintf "INSERT INTO %s VALUES (%s)" tb
    (String.concat ", " (List.map Value.to_sql_literal (Array.to_list row)))

let render (case : case) : scenario =
  let ddls = List.map (fun t -> t.tb_ddl) case.cs_tables in
  let idxs =
    List.mapi
      (fun i (t, c) -> Printf.sprintf "CREATE INDEX fzix%d ON %s (%s)" i t c)
      case.cs_indexes
  in
  let inserts =
    List.concat_map (fun t -> List.map (insert_stmt t.tb_name) t.tb_rows) case.cs_tables
  in
  let views =
    List.map (fun (name, q) -> stmt_to_string (X_create_view (name, q))) case.cs_views
  in
  { sc_label = case.cs_label;
    sc_setup = ddls @ idxs @ inserts @ views;
    sc_query = query_to_string case.cs_query }
