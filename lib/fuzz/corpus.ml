(* Replayable corpus entries.

   One file per failing case, line-oriented: `--` comment lines carry the
   label and divergence kinds, every other non-blank line is a setup
   statement, and the LAST non-comment line is the query under test.
   [Api.exec] dispatches both SQL and XNF, so replay is just "execute
   every line, cross-check the last". *)

let file_name label = "case-" ^ label ^ ".xnf"

let write ~dir ?(kinds = []) (sc : Gen.scenario) : string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (file_name sc.Gen.sc_label) in
  let oc = open_out path in
  Printf.fprintf oc "-- fuzz case %s\n" sc.Gen.sc_label;
  if kinds <> [] then Printf.fprintf oc "-- kinds: %s\n" (String.concat " " kinds);
  List.iter (fun s -> Printf.fprintf oc "%s\n" s) sc.Gen.sc_setup;
  Printf.fprintf oc "%s\n" sc.Gen.sc_query;
  close_out oc;
  path

let load (path : string) : Gen.scenario =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let stmts =
    List.rev !lines
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l >= 2 && String.sub l 0 2 = "--"))
  in
  let label =
    let base = Filename.remove_extension (Filename.basename path) in
    if String.length base > 5 && String.sub base 0 5 = "case-" then
      String.sub base 5 (String.length base - 5)
    else base
  in
  match List.rev stmts with
  | [] -> invalid_arg (path ^ ": empty corpus entry")
  | query :: setup_rev ->
    { Gen.sc_label = label; Gen.sc_setup = List.rev setup_rev; Gen.sc_query = query }

let files (dir : string) : string list =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xnf")
    |> List.sort compare
    |> List.map (Filename.concat dir)
