(* Crash-point fuzzing oracle for durable persistence.

   A seeded workload of DDL / DML / XNF statements runs against a durable
   session in a scratch data directory. The oracle records, after every
   statement executed outside an explicit transaction, the pair

     (WAL byte offset, canonical state digest)

   — the state the engine promises to reproduce if the process dies at or
   after that offset. Checkpoints split the run into eras: an era is the
   checkpoint image it started from (if any) plus the WAL written until
   the next checkpoint truncates it.

   Crash simulation then replays every era: for each record-boundary
   offset of the era's WAL (plus random torn mid-frame offsets), it
   builds a directory holding the era's checkpoint and the WAL truncated
   at that offset, recovers a fresh session from it, and asserts the
   recovered digest equals the digest at the greatest commit point at or
   below the crash offset. Any mismatch — or any exception out of
   recovery — is a divergence.

   Defect injection turns the oracle on itself: [run_defect] plants one
   of three durability bugs (fsync skipped, a CRC-corrupted frame, a
   deleted checkpoint file) and reports whether the oracle caught it.
   The CI mutation smoke fails unless all three are caught. *)

open Relational
module Api = Xnf.Api
module View_registry = Xnf.View_registry
module Co = Xnf.Co_schema

(* ---- defects ---- *)

type defect = Skip_fsync | Corrupt_crc | Drop_checkpoint

let defect_name = function
  | Skip_fsync -> "skip-fsync"
  | Corrupt_crc -> "corrupt-crc"
  | Drop_checkpoint -> "drop-checkpoint"

let defect_of_string = function
  | "skip-fsync" -> Some Skip_fsync
  | "corrupt-crc" -> Some Corrupt_crc
  | "drop-checkpoint" -> Some Drop_checkpoint
  | _ -> None

let defects = [ Skip_fsync; Corrupt_crc; Drop_checkpoint ]

(* ---- configuration and reports ---- *)

type config = {
  c_seed : int;
  c_ops : int;  (** statements in the generated workload *)
  c_torn : int;  (** random torn (mid-frame) crash offsets per era *)
  c_points : int;  (** boundary crash points tested per era; 0 = all *)
  c_checkpoint_every : int;  (** checkpoint cadence in statements; 0 = never *)
}

let default = { c_seed = 1; c_ops = 120; c_torn = 2; c_points = 0; c_checkpoint_every = 40 }

type divergence = { d_era : int; d_offset : int; d_torn : bool; d_detail : string }

type report = {
  r_ops : int;
  r_eras : int;
  r_points : int;  (** crash points recovered from *)
  r_torn_points : int;  (** of which torn (mid-frame) *)
  r_divergences : divergence list;
}

type defect_outcome = { do_defect : defect; do_caught : bool; do_detail : string }

(* ---- small file helpers (scratch dirs live under the system tmpdir) ---- *)

let read_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir () =
  let f = Filename.temp_file "xnf-crash" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

(* ---- canonical state digest ----

   Everything durability promises to preserve: table schemas, primary
   keys, live rows with their exact rowids, index definitions, tabular
   view texts and composed XNF view definitions. Deliberately excluded:
   version counters and ANALYZE statistics (not durable state) and
   trailing tombstone slots (a transaction aborted just before the crash
   leaves a tombstone replay cannot know about; logical content and
   rowids are what must survive). *)

let digest db api =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.bprintf b fmt in
  let cat = Db.catalog db in
  let names = List.sort compare (List.map String.lowercase_ascii (Catalog.table_names cat)) in
  List.iter
    (fun name ->
      let t = Catalog.table cat name in
      bpf "table %s | %s\n" name (Fmt.str "%a" Schema.pp (Table.schema t));
      (match Table.primary_key t with
      | Some pk ->
        bpf "  pk %s\n" (String.concat "," (List.map string_of_int (Array.to_list pk)))
      | None -> ());
      List.iter
        (fun i ->
          bpf "  index %s (%s) %s\n"
            (String.lowercase_ascii (Index.name i))
            (String.concat "," (List.map string_of_int (Array.to_list (Index.cols i))))
            (match Index.kind i with Index.Hash -> "hash" | Index.Ordered -> "ordered"))
        (List.sort (fun a b -> compare (Index.name a) (Index.name b)) (Table.indexes t));
      Seq.iter (fun (rid, row) -> bpf "  row %d %s\n" rid (Row.to_string row)) (Table.to_seq t))
    names;
  List.iter
    (fun (v : Catalog.view) ->
      bpf "view %s := %s\n"
        (String.lowercase_ascii v.Catalog.view_name)
        (Fmt.str "%a" Sql_ast.pp_select v.Catalog.view_query))
    (Catalog.views cat);
  let reg = Api.registry api in
  List.iter
    (fun n ->
      match View_registry.find_opt reg n with
      | None -> ()
      | Some v ->
        bpf "xnf %s\n" n;
        List.iter
          (fun (nd : Co.node_def) ->
            bpf "  node %s := %s take=%s\n" nd.Co.nd_name
              (Fmt.str "%a" Sql_ast.pp_select nd.Co.nd_query)
              (match nd.Co.nd_cols with None -> "*" | Some cs -> String.concat "," cs))
          v.View_registry.v_def.Co.co_nodes;
        List.iter
          (fun (ed : Co.edge_def) ->
            bpf "  edge %s %s(%s)->%s(%s) pred=%s\n" ed.Co.ed_name ed.Co.ed_parent
              ed.Co.ed_parent_alias ed.Co.ed_child ed.Co.ed_child_alias
              (Fmt.str "%a" Sql_ast.pp_expr ed.Co.ed_pred))
          v.View_registry.v_def.Co.co_edges;
        bpf "  restrs %d\n" (List.length v.View_registry.v_path_restrs))
    (View_registry.names reg);
  Buffer.contents b

let first_diff ~expected ~got =
  let el = String.split_on_char '\n' expected and gl = String.split_on_char '\n' got in
  let rec go i = function
    | e :: es, g :: gs ->
      if String.equal e g then go (i + 1) (es, gs)
      else Printf.sprintf "state line %d: expected %S, recovered %S" i e g
    | e :: _, [] -> Printf.sprintf "state line %d: expected %S, recovered <end>" i e
    | [], g :: _ -> Printf.sprintf "state line %d: expected <end>, recovered %S" i g
    | [], [] -> "states equal"
  in
  go 1 (el, gl)

(* ---- workload generator ----

   Seeded statements over the full durable surface: tables with an
   INTEGER primary key, multi-row inserts, point updates and deletes,
   secondary indexes, tabular and XNF views, XNF fetches, CO DELETE /
   UPDATE, explicit transactions (committed and rolled back) and
   ANALYZE. Statements are allowed to fail (e.g. a fetch through a view
   whose base table was dropped) — the oracle compares states, not
   outcomes. *)

type gen = {
  g_rng : Random.State.t;
  mutable g_tables : (string * int ref) list;  (* name, next primary key *)
  mutable g_ntab : int;
  mutable g_nidx : int;
  mutable g_idx : string list;
  mutable g_ntv : int;
  mutable g_tviews : string list;
  mutable g_nxv : int;
  mutable g_xviews : string list;
  mutable g_in_txn : bool;
  mutable g_txn_left : int;
}

let gen_create rng =
  { g_rng = rng; g_tables = []; g_ntab = 0; g_nidx = 0; g_idx = []; g_ntv = 0; g_tviews = [];
    g_nxv = 0; g_xviews = []; g_in_txn = false; g_txn_left = 0 }

let pick rng l = List.nth l (Random.State.int rng (List.length l))
let ri g n = Random.State.int g.g_rng n

let new_table g =
  let name = Printf.sprintf "t%d" g.g_ntab in
  g.g_ntab <- g.g_ntab + 1;
  g.g_tables <- g.g_tables @ [ (name, ref 0) ];
  Printf.sprintf "CREATE TABLE %s (id INTEGER PRIMARY KEY, a INTEGER, b VARCHAR(16))" name

let gen_insert g =
  let name, next = pick g.g_rng g.g_tables in
  let nrows = 1 + ri g 3 in
  let row () =
    let id = !next in
    next := !next + 1;
    Printf.sprintf "(%d, %d, 's%d')" id (ri g 100) (id mod 7)
  in
  Printf.sprintf "INSERT INTO %s VALUES %s" name
    (String.concat ", " (List.init nrows (fun _ -> row ())))

let gen_update g =
  let name, next = pick g.g_rng g.g_tables in
  if ri g 3 = 0 then Printf.sprintf "UPDATE %s SET b = 'u%d' WHERE a < %d" name (ri g 9) (ri g 50)
  else Printf.sprintf "UPDATE %s SET a = %d WHERE id = %d" name (ri g 100) (ri g (max 1 !next))

let gen_delete g =
  let name, next = pick g.g_rng g.g_tables in
  Printf.sprintf "DELETE FROM %s WHERE id = %d" name (ri g (max 1 !next))

let gen_dml g =
  match ri g 5 with 0 -> gen_update g | 1 -> gen_delete g | _ -> gen_insert g

let gen_next g =
  if g.g_in_txn then
    if g.g_txn_left <= 0 then begin
      g.g_in_txn <- false;
      if ri g 10 < 7 then "COMMIT" else "ROLLBACK"
    end
    else begin
      g.g_txn_left <- g.g_txn_left - 1;
      gen_dml g
    end
  else if g.g_tables = [] then new_table g
  else begin
    let r = ri g 100 in
    if r < 28 then gen_insert g
    else if r < 38 then gen_update g
    else if r < 46 then gen_delete g
    else if r < 54 then begin
      g.g_in_txn <- true;
      g.g_txn_left <- 1 + ri g 3;
      "BEGIN"
    end
    else if r < 58 && g.g_ntab < 5 then new_table g
    else if r < 60 && List.length g.g_tables > 1 then begin
      let name, _ = pick g.g_rng g.g_tables in
      g.g_tables <- List.filter (fun (n, _) -> n <> name) g.g_tables;
      Printf.sprintf "DROP TABLE %s" name
    end
    else if r < 65 && g.g_nidx < 8 then begin
      let name, _ = pick g.g_rng g.g_tables in
      let iname = Printf.sprintf "ix%d" g.g_nidx in
      g.g_nidx <- g.g_nidx + 1;
      g.g_idx <- iname :: g.g_idx;
      Printf.sprintf "CREATE INDEX %s ON %s (%s)" iname name (if ri g 2 = 0 then "a" else "b")
    end
    else if r < 67 && g.g_idx <> [] then begin
      let iname = pick g.g_rng g.g_idx in
      g.g_idx <- List.filter (fun n -> n <> iname) g.g_idx;
      Printf.sprintf "DROP INDEX %s" iname
    end
    else if r < 71 && g.g_ntv < 6 then begin
      let name, _ = pick g.g_rng g.g_tables in
      let vname = Printf.sprintf "tv%d" g.g_ntv in
      g.g_ntv <- g.g_ntv + 1;
      g.g_tviews <- vname :: g.g_tviews;
      Printf.sprintf "CREATE VIEW %s AS SELECT id, a FROM %s WHERE a < %d" vname name (ri g 90)
    end
    else if r < 73 && g.g_tviews <> [] then begin
      let vname = pick g.g_rng g.g_tviews in
      g.g_tviews <- List.filter (fun n -> n <> vname) g.g_tviews;
      Printf.sprintf "DROP VIEW %s" vname
    end
    else if r < 80 && g.g_nxv < 6 then begin
      let t1, _ = pick g.g_rng g.g_tables in
      let t2, _ = pick g.g_rng g.g_tables in
      let n = g.g_nxv in
      let vname = Printf.sprintf "xv%d" n in
      g.g_nxv <- n + 1;
      g.g_xviews <- vname :: g.g_xviews;
      Printf.sprintf
        "CREATE VIEW %s AS OUT OF p%d AS %s, c%d AS %s, e%d AS (RELATE p%d, c%d WHERE p%d.a = c%d.id) TAKE *"
        vname n t1 n t2 n n n n n
    end
    else if r < 82 && g.g_xviews <> [] then begin
      let vname = pick g.g_rng g.g_xviews in
      g.g_xviews <- List.filter (fun n -> n <> vname) g.g_xviews;
      Printf.sprintf "DROP VIEW %s" vname
    end
    else if r < 90 then begin
      if g.g_xviews <> [] && ri g 2 = 0 then
        Printf.sprintf "OUT OF %s TAKE *" (pick g.g_rng g.g_xviews)
      else begin
        let name, _ = pick g.g_rng g.g_tables in
        Printf.sprintf "OUT OF q AS %s TAKE *" name
      end
    end
    else if r < 93 then begin
      let name, next = pick g.g_rng g.g_tables in
      Printf.sprintf "OUT OF q AS (SELECT * FROM %s WHERE id = %d) DELETE *" name
        (ri g (max 1 !next))
    end
    else if r < 96 then begin
      let name, _ = pick g.g_rng g.g_tables in
      Printf.sprintf "OUT OF q AS (SELECT * FROM %s WHERE a < %d) UPDATE q SET b = 'w%d'" name
        (ri g 60) (ri g 9)
    end
    else if r < 98 then "ANALYZE"
    else gen_insert g
  end

(* ---- the live run: execute, record commit points, slice into eras ---- *)

type era = {
  e_ckpt : string option;  (** checkpoint file the era starts from *)
  e_wal : string;  (** full WAL bytes written during the era *)
  e_commits : (int * string) list;  (** (offset, digest), ascending; head = era start *)
}

type live = {
  l_root : string;  (** scratch root; remove when done *)
  l_dir : string;  (** the live session's data directory *)
  l_db : Db.t;
  l_api : Api.t;
  l_wal : Wal.t;
  l_eras : era list;  (** oldest first; last era is the tail of the run *)
  l_ops : int;
}

let wal_path dir = Filename.concat dir "wal.log"
let ckpt_path dir = Filename.concat dir "checkpoint.db"

(* Run [ops] statements; checkpoint every [checkpoint_every] (0 = never).
   [defect] tweaks the run shape: Skip_fsync disables fsync from the
   start, Drop_checkpoint forces exactly one mid-run checkpoint. *)
let run_live ?defect cfg =
  let root = fresh_dir () in
  let dir = Filename.concat root "live" in
  Sys.mkdir dir 0o700;
  let rng = Random.State.make [| cfg.c_seed; 0x5eed |] in
  let db = Db.create ~data_dir:dir () in
  let api = Api.create db in
  let wal = Txn.wal (Db.txn db) in
  (match defect with Some Skip_fsync -> Wal.set_fsync wal false | _ -> ());
  let g = gen_create rng in
  let ckpt_bytes = ref None in
  let commits = ref [ (Wal.file_size wal, digest db api) ] in
  let eras = ref [] in
  let finish_era () =
    let bytes = Option.value ~default:"" (read_file (wal_path dir)) in
    eras := { e_ckpt = !ckpt_bytes; e_wal = bytes; e_commits = List.rev !commits } :: !eras
  in
  let take_checkpoint () =
    finish_era ();
    ignore (Api.checkpoint api);
    ckpt_bytes := read_file (ckpt_path dir);
    commits := [ (Wal.file_size wal, digest db api) ]
  in
  let forced = ref false in
  let checkpoint_due i =
    match defect with
    | Some Drop_checkpoint -> i > cfg.c_ops / 2 && not !forced
    | Some (Skip_fsync | Corrupt_crc) -> false
    | None -> cfg.c_checkpoint_every > 0 && i mod cfg.c_checkpoint_every = 0
  in
  for i = 1 to cfg.c_ops do
    if checkpoint_due i && not (Txn.in_txn (Db.txn db)) then begin
      take_checkpoint ();
      forced := true
    end;
    (try ignore (Api.exec api (gen_next g)) with _ -> ());
    if not (Txn.in_txn (Db.txn db)) then
      commits := (Wal.file_size wal, digest db api) :: !commits
  done;
  if Txn.in_txn (Db.txn db) then begin
    (try ignore (Api.exec api "COMMIT") with _ -> ());
    commits := (Wal.file_size wal, digest db api) :: !commits
  end;
  finish_era ();
  { l_root = root; l_dir = dir; l_db = db; l_api = api; l_wal = wal;
    l_eras = List.rev !eras; l_ops = cfg.c_ops }

(* recover a session from [dir] and return its digest; the caller handles
   exceptions (recovery raising IS an observation) *)
let recover_digest dir =
  let db = Db.create ~data_dir:dir () in
  let api = Api.create db in
  let d = digest db api in
  Wal.close (Txn.wal (Db.txn db));
  d

(* expected digest after a crash at [offset]: the greatest commit point at
   or below it; below the first commit point the WAL is headerless noise,
   which recovers to the era-start state *)
let expected_at era offset =
  let rec go best = function
    | (off, d) :: rest when off <= offset -> go (Some d) rest
    | _ -> best
  in
  match go None era.e_commits with
  | Some d -> d
  | None -> ( match era.e_commits with (_, d) :: _ -> d | [] -> "")

(* crash dir builder: era checkpoint (if any) + WAL cut at [offset] *)
let build_crash_dir root era offset =
  let dir = Filename.concat root "crash" in
  rm_rf dir;
  Sys.mkdir dir 0o700;
  (match era.e_ckpt with
  | Some bytes -> write_file (ckpt_path dir) bytes
  | None -> ());
  write_file (wal_path dir) (String.sub era.e_wal 0 (min offset (String.length era.e_wal)));
  dir

(* evenly sample [cap] elements (always keeping the last) when the list is
   longer; the boundary count grows with the workload but CI wants a lid *)
let sample cap l =
  let n = List.length l in
  if cap <= 0 || n <= cap then l
  else begin
    let arr = Array.of_list l in
    List.init cap (fun i -> if i = cap - 1 then arr.(n - 1) else arr.(i * n / cap))
  end

(** [run cfg] executes the workload and recovers from every crash point. *)
let run ?(log = fun _ -> ()) cfg =
  let lv = run_live cfg in
  Wal.close lv.l_wal;
  let rng = Random.State.make [| cfg.c_seed; 0x70a7 |] in
  let points = ref 0 and torn_points = ref 0 and divs = ref [] in
  List.iteri
    (fun ei era ->
      let bounds = sample cfg.c_points (Wal.boundaries era.e_wal) in
      let arr = Array.of_list (Wal.boundaries era.e_wal) in
      let torn =
        if Array.length arr < 2 then []
        else
          List.filter_map
            (fun _ ->
              let j = Random.State.int rng (Array.length arr - 1) in
              let lo = arr.(j) and hi = arr.(j + 1) in
              if hi - lo >= 2 then Some (lo + 1 + Random.State.int rng (hi - lo - 1)) else None)
            (List.init cfg.c_torn (fun i -> i))
      in
      let try_one ~torn offset =
        incr points;
        if torn then incr torn_points;
        let dir = build_crash_dir lv.l_root era offset in
        let expected = expected_at era offset in
        match recover_digest dir with
        | got ->
          if not (String.equal got expected) then
            divs :=
              { d_era = ei; d_offset = offset; d_torn = torn;
                d_detail = first_diff ~expected ~got }
              :: !divs
        | exception e ->
          divs :=
            { d_era = ei; d_offset = offset; d_torn = torn;
              d_detail = "recovery raised: " ^ Printexc.to_string e }
            :: !divs
      in
      try_one ~torn:false 0;
      List.iter (try_one ~torn:false) bounds;
      List.iter (try_one ~torn:true) torn;
      log
        (Printf.sprintf "era %d: %d boundary + %d torn crash points, %d divergences so far" ei
           (List.length bounds + 1) (List.length torn) (List.length !divs)))
    lv.l_eras;
  rm_rf lv.l_root;
  { r_ops = lv.l_ops; r_eras = List.length lv.l_eras; r_points = !points;
    r_torn_points = !torn_points; r_divergences = List.rev !divs }

(** [run_defect cfg defect] plants one durability bug and reports whether
    the oracle caught it (the CI mutation smoke requires all three). *)
let run_defect cfg defect =
  let lv = run_live ~defect cfg in
  let final = digest lv.l_db lv.l_api in
  let outcome =
    match defect with
    | Skip_fsync ->
      (* syncs silently skipped: the on-disk WAL never grew, so a crash
         must lose committed work the session believes durable *)
      Wal.close lv.l_wal;
      let era = List.nth lv.l_eras (List.length lv.l_eras - 1) in
      let disk = era.e_wal in
      let dir = build_crash_dir lv.l_root { era with e_wal = disk } (String.length disk) in
      (match recover_digest dir with
      | got ->
        if String.equal got final then
          { do_defect = defect; do_caught = false;
            do_detail = "recovered state matches despite skipped fsyncs" }
        else
          { do_defect = defect; do_caught = true;
            do_detail = "committed work lost on crash: " ^ first_diff ~expected:final ~got }
      | exception e ->
        { do_defect = defect; do_caught = true;
          do_detail = "recovery raised: " ^ Printexc.to_string e })
    | Corrupt_crc ->
      (* flip a byte mid-log: recovery must detect the bad CRC, truncate
         there and come back as the last commit point before the damage *)
      Wal.close lv.l_wal;
      let era = List.nth lv.l_eras (List.length lv.l_eras - 1) in
      let arr = Array.of_list (Wal.boundaries era.e_wal) in
      if Array.length arr < 4 then
        { do_defect = defect; do_caught = false; do_detail = "workload too small to corrupt" }
      else begin
        let k = Array.length arr / 3 in
        let pos = arr.(k) + 8 + 1 in
        let bytes = Bytes.of_string era.e_wal in
        Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x55));
        let corrupted = Bytes.to_string bytes in
        let expected = expected_at era arr.(k) in
        let before = Obs.Metrics.counter_get "wal.truncated_bytes" in
        let dir = build_crash_dir lv.l_root { era with e_wal = corrupted } (String.length corrupted) in
        match recover_digest dir with
        | got ->
          let truncated = Obs.Metrics.counter_get "wal.truncated_bytes" - before in
          if String.equal expected final then
            { do_defect = defect; do_caught = false;
              do_detail = "no state change after the corrupted frame; inconclusive" }
          else if (not (String.equal got expected)) || truncated <= 0 then
            { do_defect = defect; do_caught = false;
              do_detail =
                Printf.sprintf "corruption not contained (truncated %d bytes): %s" truncated
                  (first_diff ~expected ~got) }
          else
            { do_defect = defect; do_caught = true;
              do_detail =
                Printf.sprintf
                  "bad CRC detected: %d bytes truncated, state rolled to last good commit"
                  truncated }
        | exception e ->
          { do_defect = defect; do_caught = false;
            do_detail = "recovery raised instead of truncating: " ^ Printexc.to_string e }
      end
    | Drop_checkpoint ->
      (* delete the checkpoint the WAL was truncated against: everything
         absorbed into it is gone, which recovery cannot paper over *)
      Wal.close lv.l_wal;
      let era = List.nth lv.l_eras (List.length lv.l_eras - 1) in
      let dir = build_crash_dir lv.l_root { era with e_ckpt = None } (String.length era.e_wal) in
      (match recover_digest dir with
      | got ->
        if String.equal got final then
          { do_defect = defect; do_caught = false;
            do_detail = "recovered state matches despite the missing checkpoint" }
        else
          { do_defect = defect; do_caught = true;
            do_detail = "checkpointed state lost: " ^ first_diff ~expected:final ~got }
      | exception e ->
        { do_defect = defect; do_caught = true;
          do_detail = "recovery failed without the checkpoint: " ^ Printexc.to_string e })
  in
  rm_rf lv.l_root;
  outcome
