(** Crash-point fuzzing oracle for durable persistence.

    A seeded DDL/DML/XNF workload runs against a durable session in a
    scratch data directory while the oracle records, at every statement
    boundary outside an explicit transaction, the (WAL offset, canonical
    state digest) pair the engine promises to reproduce after a crash at
    or beyond that offset. Checkpoints slice the run into eras; crash
    simulation then recovers a fresh session from every record-boundary
    offset of every era's WAL (plus random torn mid-frame offsets) and
    compares the recovered digest against the committed-prefix oracle.

    [run_defect] injects one of three durability bugs — fsync skipped,
    a CRC-corrupted frame, a deleted checkpoint file — and reports
    whether the oracle caught it. *)

type defect = Skip_fsync | Corrupt_crc | Drop_checkpoint

val defect_name : defect -> string
val defect_of_string : string -> defect option

(** All injectable defects, in smoke-test order. *)
val defects : defect list

type config = {
  c_seed : int;
  c_ops : int;  (** statements in the generated workload *)
  c_torn : int;  (** random torn (mid-frame) crash offsets per era *)
  c_points : int;  (** boundary crash points tested per era; 0 = all *)
  c_checkpoint_every : int;  (** checkpoint cadence in statements; 0 = never *)
}

val default : config

type divergence = {
  d_era : int;  (** era index (0-based) the crash was simulated in *)
  d_offset : int;  (** WAL byte offset the crash truncated at *)
  d_torn : bool;  (** a torn mid-frame offset rather than a boundary *)
  d_detail : string;  (** first differing state line, or the exception *)
}

type report = {
  r_ops : int;
  r_eras : int;
  r_points : int;  (** crash points recovered from *)
  r_torn_points : int;  (** of which torn (mid-frame) *)
  r_divergences : divergence list;
}

(** [run cfg] executes the workload and recovers from every crash point;
    an empty [r_divergences] means every simulated crash recovered to
    exactly the committed prefix. *)
val run : ?log:(string -> unit) -> config -> report

type defect_outcome = { do_defect : defect; do_caught : bool; do_detail : string }

(** [run_defect cfg defect] plants the durability bug and reports whether
    the oracle detected it; the CI mutation smoke requires all of
    {!defects} to come back caught. *)
val run_defect : config -> defect -> defect_outcome
