(* Plan-convergence corpus runner.

   Each [examples/converge/*.xnf] file is one equivalence group:
   setup statements (schema, data, ANALYZE) followed by several
   semantically-equivalent formulations of the same composite-object
   query (reordered restrictions, view-wrapped vs. inline, path vs.
   RELATE phrasing).  The gate asserts that, with fresh statistics,
   every formulation of a group

     1. loads the identical instance (pairwise {!Oracle.compare_caches}),
     2. compiles under the shared cost model ({!Fetch_plan.cost_based}),
     3. converges to the same per-edge strategy set, and
     4. matches the [-- expect: edge=strategy,...] declaration when the
        file carries one.

   [skip_analyze] is the injected mis-pick for the CI self-check: with
   ANALYZE statements dropped the planner falls back to static rules,
   so a corpus whose expectations encode genuine cost-based picks must
   fail — proving the gate can actually detect a mis-pick. *)

open Xnf

type file_result = {
  cr_file : string;
  cr_forms : int;  (** formulations executed *)
  cr_strategies : (string * Translate.strategy) list;
      (** converged per-edge set of the first formulation, sorted *)
  cr_errors : string list;  (** empty iff the group passed *)
}

let strategy_of_name = function
  | "indexed" -> Some Translate.S_indexed
  | "hash-batch" | "hash" -> Some Translate.S_hash
  | "generic" -> Some Translate.S_generic
  | _ -> None

let show_set set =
  if set = [] then "(none)"
  else
    String.concat ","
      (List.map (fun (e, s) -> e ^ "=" ^ Translate.strategy_name s) set)

(* [-- expect: e0=indexed, e1=hash-batch] *)
let parse_expect line =
  let body = String.sub line 10 (String.length line - 10) in
  List.filter_map
    (fun item ->
      match String.split_on_char '=' (String.trim item) with
      | [ edge; strat ] -> begin
        match strategy_of_name (String.trim strat) with
        | Some s -> Some (String.trim edge, s)
        | None -> failwith (Printf.sprintf "bad strategy in expect: %S" item)
      end
      | _ -> failwith (Printf.sprintf "bad expect item: %S" item))
    (String.split_on_char ',' body)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.uppercase_ascii (String.sub s 0 (String.length prefix)) = prefix

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let sorted_strategies plan =
  List.sort compare (Fetch_plan.strategies plan)

let run_file ?(skip_analyze = false) path : file_result =
  let expect = ref None in
  let setup = ref [] in
  let forms = ref [] in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" then ()
      else if has_prefix ~prefix:"-- EXPECT:" line then expect := Some (parse_expect line)
      else if has_prefix ~prefix:"--" line then ()
      else if has_prefix ~prefix:"OUT OF" line then forms := line :: !forms
      else if skip_analyze && has_prefix ~prefix:"ANALYZE" line then ()
      else setup := line :: !setup)
    (read_lines path);
  let setup = List.rev !setup and forms = List.rev !forms in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let strategies = ref [] in
  begin
    try
      if forms = [] then failwith "no OUT OF formulations in file";
      let db = Relational.Db.create () in
      let api = Api.create db in
      List.iter (fun stmt -> ignore (Api.exec api stmt)) setup;
      let runs =
        List.map
          (fun q ->
            let plan = Fetch_plan.compile db (Api.registry api) (Xnf_parser.parse_query q) in
            let cache = Fetch_plan.execute db plan in
            (q, plan, cache))
          forms
      in
      let _, plan0, cache0 = List.hd runs in
      let set0 = sorted_strategies plan0 in
      strategies := set0;
      List.iteri
        (fun i (q, plan, cache) ->
          if not (Fetch_plan.cost_based plan) then
            err "formulation %d not cost-based (stats missing or stale): %s" (i + 1) q;
          if i > 0 then begin
            (match Oracle.compare_caches cache0 cache with
            | None -> ()
            | Some d -> err "formulation %d instance differs from formulation 1: %s" (i + 1) d);
            let set = sorted_strategies plan in
            if set <> set0 then
              err "formulation %d strategies %s differ from formulation 1 %s" (i + 1)
                (show_set set) (show_set set0)
          end)
        runs;
      match !expect with
      | Some e when List.sort compare e <> set0 ->
        err "converged set %s does not match declared expect %s" (show_set set0)
          (show_set (List.sort compare e))
      | _ -> ()
    with
    | Failure m -> err "%s" m
    | e -> err "exception: %s" (Printexc.to_string e)
  end;
  { cr_file = path;
    cr_forms = List.length forms;
    cr_strategies = !strategies;
    cr_errors = List.rev !errors }

let run_dir ?skip_analyze dir : file_result list =
  let entries =
    match Sys.readdir dir with
    | a ->
      Array.to_list a
      |> List.filter (fun f -> Filename.check_suffix f ".xnf")
      |> List.sort compare
      |> List.map (Filename.concat dir)
    | exception Sys_error _ -> []
  in
  List.map (fun p -> run_file ?skip_analyze p) entries
