(** Plan-convergence corpus: groups of semantically-equivalent XNF
    formulations (one [.xnf] file per group) that must load identical
    instances AND converge to the same cost-picked per-edge strategy
    set once ANALYZE has run.

    File format (line-oriented, like the fuzz corpus): [--] comments,
    setup statements in order (schema, data, ANALYZE), every [OUT OF]
    line is one formulation of the group's query.  An optional
    [-- expect: edge=strategy,...] comment pins the converged set
    ([indexed], [hash-batch] or [generic] per edge). *)

open Xnf

type file_result = {
  cr_file : string;
  cr_forms : int;  (** formulations executed *)
  cr_strategies : (string * Translate.strategy) list;
      (** converged per-edge set of the first formulation, sorted *)
  cr_errors : string list;  (** empty iff the group passed *)
}

(** [run_file ?skip_analyze path] executes one group on a fresh
    database: setup, then each formulation through
    {!Xnf.Fetch_plan.compile}/[execute], asserting pairwise instance
    equality, cost-based compilation, an identical strategy set across
    formulations, and the [-- expect:] declaration when present.
    [skip_analyze] drops ANALYZE statements — the injected mis-pick
    used by the CI self-check (static fallback must betray itself). *)
val run_file : ?skip_analyze:bool -> string -> file_result

(** [run_dir ?skip_analyze dir] runs every [*.xnf] group under [dir],
    sorted; [[]] when the directory does not exist. *)
val run_dir : ?skip_analyze:bool -> string -> file_result list

(** [show_set set] renders a strategy set as [e0=indexed,e1=hash-batch]
    for reports. *)
val show_set : (string * Translate.strategy) list -> string
