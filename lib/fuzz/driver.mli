(** The fuzzing loop: generate cases, cross-check against the oracles,
    shrink failures and persist them as replayable corpus entries.
    Deterministic for a given (seed, iters, config). *)

type failure = {
  fl_label : string;
  fl_kinds : string list;  (** divergence kinds (of the shrunk case) *)
  fl_detail : string;
  fl_file : string option;  (** corpus entry, when a directory was given *)
  fl_scenario : Gen.scenario;  (** the shrunk scenario *)
}

type report = {
  r_cases : int;
  r_failures : failure list;
  r_mutated : int;  (** mutation runs where the injection found something to break *)
  r_caught : int;  (** of those, runs where the harness reported a divergence *)
  r_coverage : (string * int) list;  (** feature/oracle hit counts *)
  r_shrink_attempts : int;
}

(** [run ~seed ~iters ()] fuzzes [iters] cases of stream [seed]. With
    [mutation], every case runs with the defect injected and the report
    counts caught vs. missed instead of recording failures. [advise] adds
    the plan-advisor purity guard to every case. [corpus_dir] persists
    shrunk failures; [shrink:false] skips minimization; [log] receives
    progress lines. *)
val run :
  ?config:Gen.config ->
  ?advise:bool ->
  ?mutation:Oracle.mutation ->
  ?corpus_dir:string ->
  ?shrink:bool ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  seed:int ->
  iters:int ->
  unit ->
  report

(** [replay path] re-executes one corpus entry through the oracles. *)
val replay : ?advise:bool -> ?mutation:Oracle.mutation -> string -> Oracle.outcome

(** [replay_dir dir] replays every corpus entry under [dir]. *)
val replay_dir :
  ?advise:bool ->
  ?mutation:Oracle.mutation ->
  ?log:(string -> unit) ->
  string ->
  (string * Oracle.outcome) list
