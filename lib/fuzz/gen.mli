(** Seeded, deterministic generator of random composite-object scenarios:
    schema graphs (DAGs and cyclic, FK / general-predicate / USING link
    edges), base-table populations, secondary indexes, XNF views over
    views and a query under test with node/edge/path restrictions and
    TAKE projections. Cases are structured (tables + ASTs) so the
    shrinker can transform them; {!render} pretty-prints to concrete
    syntax so the real lexer/parser/binder run on every case. *)

open Relational
open Xnf
open Xnf_ast

type config = {
  max_nodes : int;  (** node tables per case, >= 2 *)
  max_rows : int;  (** rows per node table, >= 2 *)
  allow_recursive : bool;  (** back edges and self loops *)
  allow_views : bool;  (** wrap schema prefixes into views (views over views) *)
  allow_paths : bool;  (** path expressions in restrictions *)
}

val default : config

type table = {
  tb_name : string;
  tb_ddl : string;  (** CREATE TABLE statement *)
  tb_rows : Value.t array list;  (** materialized rows, rendered as INSERTs *)
}

type case = {
  cs_label : string;  (** "seed-index" provenance *)
  cs_tables : table list;
  cs_indexes : (string * string) list;  (** table, column *)
  cs_views : (string * query) list;  (** in definition order *)
  cs_query : query;
}

(** A rendered case: setup statements (DDL, indexes, inserts, view
    definitions — executed in order) and the OUT OF query under test. *)
type scenario = { sc_label : string; sc_setup : string list; sc_query : string }

(** [generate ~seed ~index ()] is the [index]-th case of stream [seed];
    the same pair always produces the same case. *)
val generate : ?config:config -> seed:int -> index:int -> unit -> case

(** [mono_restriction case] is a strengthening SQL restriction on a node
    every generated case contains, used for the restriction-monotonicity
    metamorphic check. *)
val mono_restriction : case -> restriction

(** [render case] pretty-prints the case to concrete syntax. *)
val render : case -> scenario
