(** Differential oracles: execute a rendered scenario through the full
    pipeline and cross-check against every oracle that supports the
    composed definition — naive fixpoint, unshared per-node derivation,
    LW90 instantiation, structural invariants, lint cleanliness, and
    metamorphic properties (restriction monotonicity, TAKE commutation,
    result-cache refetch). *)

open Relational
open Xnf

(** A deliberate defect injected into the system-under-test caches after
    loading; the harness must report at least one divergence. *)
type mutation =
  | Drop_conn
  | Drop_tuple
  | Dict_swap  (** corrupt one encoded cell to a different valid dictionary id *)

val mutation_name : mutation -> string
val mutation_of_string : string -> mutation option

type divergence = { d_kind : string; d_detail : string }

(** Which schema/query features the case exercised and which oracles
    actually compared — coverage accounting for the driver. *)
type flags = {
  f_recursive : bool;
  f_sharing : bool;
  f_views : bool;
  f_using : bool;
  f_paths : bool;
  f_naive : bool;  (** unshared-derivation oracle compared *)
  f_lw90 : bool;
  f_mono : bool;  (** monotonicity property compared *)
  f_hash : bool;  (** strategy differential compared a batch-hash run *)
  f_adaptive : bool;  (** adaptive differential saw a mid-fixpoint switch fire *)
  f_advise : bool;  (** the plan-advisor purity guard ran *)
  f_dict : bool;  (** the dictionary round-trip oracle compared the instance *)
  f_mutated : bool;  (** the injected mutation found something to break *)
}

val no_flags : flags

type outcome = { o_divs : divergence list; o_flags : flags }

(** [run ?advise ?mutation ?extra_restr sc] executes [sc] on a fresh
    database and API session and returns every divergence found.
    [extra_restr] (a strengthening restriction) enables the monotonicity
    check when all of the query's path restrictions are monotone.
    [advise] additionally runs the static plan advisor over the compiled
    plan and checks it is pure: it never raises, reports the same
    advisory set for a cold-compiled plan and a plan-cache hit, and
    perturbs neither fetch results nor cache validity. *)
val run :
  ?advise:bool -> ?mutation:mutation -> ?extra_restr:Xnf_ast.restriction -> Gen.scenario -> outcome

(** {2 Comparators}

    Exposed for reuse by hand-written conformance tests. *)

(** [node_extent cache name] is the sorted live extent of a component. *)
val node_extent : Cache.t -> string -> Row.t list

(** [conn_extent ?attrs cache name] is the sorted live connection set as
    parent-row ++ child-row (++ attribute-row unless [attrs] is false). *)
val conn_extent : ?attrs:bool -> Cache.t -> string -> Row.t list

(** [compare_caches a b] is [None] when both instances have the same
    components, extents and connection sets, else a description of the
    first difference. *)
val compare_caches : Cache.t -> Cache.t -> string option

(** [subset_caches a b] checks [a] is a sub-instance of [b]. *)
val subset_caches : Cache.t -> Cache.t -> string option

(** [check_conn_liveness cache] verifies every live connection joins two
    live tuples (valid on any instance). *)
val check_conn_liveness : Cache.t -> string option

(** [check_reachability cache] verifies every live tuple of a non-root
    component has a live incoming connection. Only valid on pre-TAKE
    instances: evaluate-then-project may drop a kept tuple's justifying
    relationship. *)
val check_reachability : Cache.t -> string option

(** [monotone_restrictions rs] holds when strengthening the query cannot
    grow the instance: every path atom in [rs] appears in positive
    polarity and COUNT(path) only as a lower bound. *)
val monotone_restrictions : Xnf_ast.restriction list -> bool

(** [apply_mutation m cache] injects [m]; [false] when the cache has
    nothing to break (e.g. no live connections). *)
val apply_mutation : mutation -> Cache.t -> bool
