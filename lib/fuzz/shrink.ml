(* Greedy structural shrinking of failing cases.

   Candidates are tried in a fixed order — inline views, drop the TAKE
   projection, drop restrictions, drop edges, drop nodes, shrink rows,
   drop indexes — and the first candidate on which the caller's predicate
   still holds (same divergence kind reproduces) becomes the new current
   case. Candidates need not preserve semantics: one that breaks the case
   outright produces a different divergence kind and is rejected by the
   predicate. Every accepted step strictly shrinks the case, so the loop
   terminates even without the attempt budget. *)

open Xnf
open Xnf_ast

(* ---- name collection: which nodes/edges a restriction touches ---- *)

let path_names (p : path) acc =
  List.fold_left
    (fun acc s ->
      match s with
      | Step_edge e -> e :: acc
      | Step_node { sn_node; _ } -> sn_node :: acc)
    (p.p_start :: acc) p.p_steps

let rec pred_names (e : xexpr) acc =
  match e with
  | X_cmp (_, a, b) | X_arith (_, a, b) | X_and (a, b) | X_or (a, b) | X_like (a, b) ->
    pred_names a (pred_names b acc)
  | X_not a | X_neg a | X_is_null a | X_is_not_null a -> pred_names a acc
  | X_in_list (a, l) -> List.fold_left (fun acc x -> pred_names x acc) (pred_names a acc) l
  | X_fn (_, l) -> List.fold_left (fun acc x -> pred_names x acc) acc l
  | X_count_path p | X_exists_path p -> path_names p acc
  | X_col _ | X_lit _ | X_param _ -> acc

let restr_names = function
  | R_node { rn_node; rn_pred; _ } -> rn_node :: pred_names rn_pred []
  | R_edge { re_edge; re_pred; _ } -> re_edge :: pred_names re_pred []

let mentions_any names r = List.exists (fun n -> List.mem n (restr_names r)) names

let prune_take names take =
  match take with
  | Take_star -> Take_star
  | Take_items items -> begin
    match
      List.filter
        (function
          | Take_node (n, _) -> not (List.mem n names)
          | Take_edge e -> not (List.mem e names))
        items
    with
    | [] -> Take_star
    | kept -> Take_items kept
  end

let map_queries f (case : Gen.case) =
  { case with
    Gen.cs_views = List.map (fun (n, q) -> (n, f q)) case.Gen.cs_views;
    Gen.cs_query = f case.Gen.cs_query }

let queries_nonempty (case : Gen.case) =
  case.Gen.cs_query.q_out_of <> []
  && List.for_all (fun (_, q) -> q.q_out_of <> []) case.Gen.cs_views

(* ---- candidate transformations ---- *)

(* inline the last view into the main query (views form a chain, so
   repeating this unwinds all of them); only Take_star views inline *)
let inline_last_view (case : Gen.case) : Gen.case option =
  match List.rev case.Gen.cs_views with
  | [] -> None
  | (vname, vq) :: rest_rev ->
    if vq.q_take <> Take_star then None
    else if not (List.exists (function B_view v -> String.equal v vname | _ -> false)
                   case.Gen.cs_query.q_out_of)
    then None
    else begin
      let q = case.Gen.cs_query in
      let out_of =
        List.concat_map
          (function B_view v when String.equal v vname -> vq.q_out_of | b -> [ b ])
          q.q_out_of
      in
      Some
        { case with
          Gen.cs_views = List.rev rest_rev;
          Gen.cs_query = { q with q_out_of = out_of; q_where = vq.q_where @ q.q_where } }
    end

let take_to_star (case : Gen.case) : Gen.case option =
  if case.Gen.cs_query.q_take = Take_star then None
  else Some { case with Gen.cs_query = { case.Gen.cs_query with q_take = Take_star } }

(* one candidate per restriction, across views and the main query *)
let drop_restrictions (case : Gen.case) : Gen.case list =
  let drop_nth q i = { q with q_where = List.filteri (fun j _ -> j <> i) q.q_where } in
  let in_main =
    List.mapi
      (fun i _ -> { case with Gen.cs_query = drop_nth case.Gen.cs_query i })
      case.Gen.cs_query.q_where
  in
  let in_views =
    List.concat_map
      (fun (vn, vq) ->
        List.mapi
          (fun i _ ->
            { case with
              Gen.cs_views =
                List.map
                  (fun (n, q) -> if String.equal n vn then (n, drop_nth q i) else (n, q))
                  case.Gen.cs_views })
          vq.q_where)
      case.Gen.cs_views
  in
  in_main @ in_views

let all_bindings (case : Gen.case) =
  List.concat_map (fun (_, q) -> q.q_out_of) case.Gen.cs_views @ case.Gen.cs_query.q_out_of

(* drop one edge binding plus everything referencing it; a USING edge
   takes its link table (and that table's indexes) with it *)
let drop_edge (case : Gen.case) (en : string) : Gen.case option =
  let using_tables =
    List.filter_map
      (function
        | B_edge b when String.equal b.be_name en ->
          Option.map fst b.be_using
        | _ -> None)
      (all_bindings case)
  in
  let case =
    map_queries
      (fun q ->
        { q_out_of =
            List.filter (function B_edge b -> not (String.equal b.be_name en) | _ -> true) q.q_out_of;
          q_where = List.filter (fun r -> not (mentions_any [ en ] r)) q.q_where;
          q_take = prune_take [ en ] q.q_take })
      case
  in
  let case =
    { case with
      Gen.cs_tables =
        List.filter (fun t -> not (List.mem t.Gen.tb_name using_tables)) case.Gen.cs_tables;
      Gen.cs_indexes =
        List.filter (fun (t, _) -> not (List.mem t using_tables)) case.Gen.cs_indexes }
  in
  if queries_nonempty case then Some case else None

(* drop one node binding plus its edges, restrictions, TAKE items and
   base table *)
let drop_node (case : Gen.case) (nn : string) : Gen.case option =
  let dead_edges =
    List.filter_map
      (function
        | B_edge b when String.equal b.be_parent nn || String.equal b.be_child nn ->
          Some b.be_name
        | _ -> None)
      (all_bindings case)
  in
  let dead_links =
    List.filter_map
      (function
        | B_edge b when List.mem b.be_name dead_edges -> Option.map fst b.be_using
        | _ -> None)
      (all_bindings case)
  in
  let names = nn :: dead_edges in
  let tbl = "t" ^ String.sub nn 1 (String.length nn - 1) in
  let dead_tables = tbl :: dead_links in
  let case =
    map_queries
      (fun q ->
        { q_out_of =
            List.filter
              (function
                | B_node b -> not (String.equal b.bn_name nn)
                | B_edge b -> not (List.mem b.be_name dead_edges)
                | B_view _ -> true)
              q.q_out_of;
          q_where = List.filter (fun r -> not (mentions_any names r)) q.q_where;
          q_take = prune_take names q.q_take })
      case
  in
  let case =
    { case with
      Gen.cs_tables =
        List.filter (fun t -> not (List.mem t.Gen.tb_name dead_tables)) case.Gen.cs_tables;
      Gen.cs_indexes =
        List.filter (fun (t, _) -> not (List.mem t dead_tables)) case.Gen.cs_indexes }
  in
  if queries_nonempty case then Some case else None

(* halve a table's population, or drop single rows once it is small *)
let shrink_rows (case : Gen.case) : Gen.case list =
  let with_rows tb rows =
    { case with
      Gen.cs_tables =
        List.map
          (fun t -> if String.equal t.Gen.tb_name tb then { t with Gen.tb_rows = rows } else t)
          case.Gen.cs_tables }
  in
  List.concat_map
    (fun t ->
      let rows = t.Gen.tb_rows in
      let len = List.length rows in
      if len = 0 then []
      else if len > 4 then [ with_rows t.Gen.tb_name (List.filteri (fun i _ -> i < len / 2) rows) ]
      else
        List.init len (fun i -> with_rows t.Gen.tb_name (List.filteri (fun j _ -> j <> i) rows)))
    case.Gen.cs_tables

let drop_indexes (case : Gen.case) : Gen.case list =
  match case.Gen.cs_indexes with
  | [] -> []
  | [ _ ] -> [ { case with Gen.cs_indexes = [] } ]
  | ixs ->
    { case with Gen.cs_indexes = [] }
    :: List.mapi (fun i _ -> { case with Gen.cs_indexes = List.filteri (fun j _ -> j <> i) ixs }) ixs

let candidates (case : Gen.case) : Gen.case list =
  let opt f = Option.to_list (f case) in
  let edge_names =
    List.filter_map (function B_edge b -> Some b.be_name | _ -> None) (all_bindings case)
  in
  let node_names =
    List.filter_map (function B_node b -> Some b.bn_name | _ -> None) (all_bindings case)
  in
  opt inline_last_view
  @ opt take_to_star
  @ drop_restrictions case
  @ List.filter_map (drop_edge case) edge_names
  @ List.filter_map (drop_node case) node_names
  @ shrink_rows case
  @ drop_indexes case

let case_size (case : Gen.case) =
  List.length (all_bindings case)
  + List.fold_left (fun n t -> n + List.length t.Gen.tb_rows) 0 case.Gen.cs_tables
  + List.length case.Gen.cs_indexes

let minimize ~budget ~pred (case : Gen.case) : Gen.case * int =
  let attempts = ref 0 in
  let try_pred c =
    if !attempts >= budget then false
    else begin
      incr attempts;
      pred c
    end
  in
  let rec loop case =
    match List.find_opt try_pred (candidates case) with
    | Some smaller -> loop smaller
    | None -> case
  in
  (* bind before pairing: tuple components evaluate right-to-left, which
     would read [!attempts] before the loop runs *)
  let shrunk = loop case in
  (shrunk, !attempts)
