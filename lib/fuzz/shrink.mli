(** Greedy structural shrinking of failing cases: inline views, drop the
    TAKE projection, drop restrictions/edges/nodes (cascading dependents),
    shrink base-table rows, drop indexes — keeping any transformation on
    which [pred] still holds. *)

(** [minimize ~budget ~pred case] greedily shrinks [case] while [pred]
    (typically "the same divergence kind reproduces") accepts the
    candidate, spending at most [budget] predicate evaluations. Returns
    the smallest accepted case and the number of attempts spent. *)
val minimize : budget:int -> pred:(Gen.case -> bool) -> Gen.case -> Gen.case * int

(** [case_size case] is a rough size measure (bindings + rows + indexes)
    used for reporting shrink progress. *)
val case_size : Gen.case -> int
