(* The fuzzing loop: generate → render → cross-check → shrink → corpus.

   Deterministic for a given (seed, iters, config): case [i] of stream
   [seed] is always the same scenario, so a CI failure reproduces locally
   with the same flags. *)

type failure = {
  fl_label : string;
  fl_kinds : string list;
  fl_detail : string;
  fl_file : string option;  (** corpus entry, when a directory was given *)
  fl_scenario : Gen.scenario;  (** the shrunk scenario *)
}

type report = {
  r_cases : int;
  r_failures : failure list;
  r_mutated : int;  (** mutation runs where the injection found something to break *)
  r_caught : int;  (** of those, runs where the harness reported a divergence *)
  r_coverage : (string * int) list;
  r_shrink_attempts : int;
}

let kinds_of (o : Oracle.outcome) =
  List.sort_uniq compare (List.map (fun d -> d.Oracle.d_kind) o.Oracle.o_divs)

let detail_of (o : Oracle.outcome) =
  String.concat "; "
    (List.map (fun d -> d.Oracle.d_kind ^ ": " ^ d.Oracle.d_detail) o.Oracle.o_divs)

let coverage_counts =
  [ "recursive"; "sharing"; "views"; "using"; "paths"; "naive"; "lw90"; "mono"; "hash";
    "adaptive"; "advise"; "dict" ]

let bump cov (f : Oracle.flags) =
  let on = function
    | "recursive" -> f.Oracle.f_recursive
    | "sharing" -> f.Oracle.f_sharing
    | "views" -> f.Oracle.f_views
    | "using" -> f.Oracle.f_using
    | "paths" -> f.Oracle.f_paths
    | "naive" -> f.Oracle.f_naive
    | "lw90" -> f.Oracle.f_lw90
    | "mono" -> f.Oracle.f_mono
    | "hash" -> f.Oracle.f_hash
    | "adaptive" -> f.Oracle.f_adaptive
    | "advise" -> f.Oracle.f_advise
    | "dict" -> f.Oracle.f_dict
    | _ -> false
  in
  List.map (fun (k, n) -> (k, if on k then n + 1 else n)) cov

let run_case ?advise ?mutation (case : Gen.case) : Gen.scenario * Oracle.outcome =
  let sc = Gen.render case in
  (sc, Oracle.run ?advise ?mutation ~extra_restr:(Gen.mono_restriction case) sc)

let run ?(config = Gen.default) ?advise ?mutation ?corpus_dir ?(shrink = true)
    ?(shrink_budget = 200) ?(log = fun _ -> ()) ~seed ~iters () : report =
  let failures = ref [] in
  let mutated = ref 0 in
  let caught = ref 0 in
  let shrink_attempts = ref 0 in
  let cov = ref (List.map (fun k -> (k, 0)) coverage_counts) in
  for index = 0 to iters - 1 do
    let case = Gen.generate ~config ~seed ~index () in
    let sc, outcome = run_case ?advise ?mutation case in
    cov := bump !cov outcome.Oracle.o_flags;
    (match mutation with
    | Some _ ->
      if outcome.Oracle.o_flags.Oracle.f_mutated then begin
        incr mutated;
        if outcome.Oracle.o_divs <> [] then incr caught
      end
    | None ->
      if outcome.Oracle.o_divs <> [] then begin
        let kinds0 = kinds_of outcome in
        log
          (Printf.sprintf "case %s diverged (%s), shrinking..." sc.Gen.sc_label
             (String.concat " " kinds0));
        let small_case, small_outcome =
          if not shrink then (case, outcome)
          else begin
            let pred c =
              let _, o = run_case ?advise c in
              List.exists (fun k -> List.mem k kinds0) (kinds_of o)
            in
            let small, attempts = Shrink.minimize ~budget:shrink_budget ~pred case in
            shrink_attempts := !shrink_attempts + attempts;
            log
              (Printf.sprintf "shrunk %s: size %d -> %d in %d attempts" sc.Gen.sc_label
                 (Shrink.case_size case) (Shrink.case_size small) attempts);
            let _, o = run_case small in
            (small, o)
          end
        in
        let small_sc = Gen.render small_case in
        let kinds = match kinds_of small_outcome with [] -> kinds0 | ks -> ks in
        let file = Option.map (fun dir -> Corpus.write ~dir ~kinds small_sc) corpus_dir in
        failures :=
          { fl_label = sc.Gen.sc_label;
            fl_kinds = kinds;
            fl_detail = detail_of (if small_outcome.Oracle.o_divs <> [] then small_outcome else outcome);
            fl_file = file;
            fl_scenario = small_sc }
          :: !failures
      end);
    if (index + 1) mod 50 = 0 then
      log (Printf.sprintf "%d/%d cases, %d divergent" (index + 1) iters (List.length !failures))
  done;
  { r_cases = iters;
    r_failures = List.rev !failures;
    r_mutated = !mutated;
    r_caught = !caught;
    r_coverage = !cov;
    r_shrink_attempts = !shrink_attempts }

let replay ?advise ?mutation (path : string) : Oracle.outcome =
  Oracle.run ?advise ?mutation (Corpus.load path)

let replay_dir ?advise ?mutation ?(log = fun _ -> ()) (dir : string) :
    (string * Oracle.outcome) list =
  List.map
    (fun path ->
      let o = replay ?advise ?mutation path in
      log
        (Printf.sprintf "%s: %s" path
           (if o.Oracle.o_divs = [] then "ok" else "DIVERGED " ^ String.concat " " (kinds_of o)));
      (path, o))
    (Corpus.files dir)
