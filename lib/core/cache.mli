(** The XNF cache: an in-memory composite-object instance (§4.2 of the
    paper).

    A loaded CO holds, per component table, a vector of tuples (with
    base-table provenance when the node is updatable) and, per
    relationship, the connection set with adjacency in both directions —
    the paper's "virtual memory pointers", realized as integer positions.
    Connections are stored struct-of-arrays (the fetch path is
    allocation-light); adjacency is a CSR built lazily on first
    navigation. Tuples and connections are tombstoned rather than
    removed, so cursor positions and adjacency stay stable under
    manipulation operations. *)

open Relational

type tuple = {
  t_pos : int;  (** position in the node vector (stable identity) *)
  mutable t_row : Row.enc;  (** dictionary-encoded; decode via {!row}/{!col} *)
  mutable t_rowid : int;  (** provenance: base-table rowid; [-1] = none *)
  mutable t_live : bool;
  mutable t_dirty : bool;  (** modified in cache, not yet propagated *)
}

type node_inst = {
  ni_name : string;
  mutable ni_schema : Schema.t;
  ni_tuples : tuple Vec.t;
  mutable ni_upd : Semantic.node_updatability option;
  ni_by_rowid : Intmap.t;  (** base rowid -> position *)
  mutable ni_locked_cols : int list;
      (** columns used in relationship predicates: updatable only through
          connect/disconnect (§3.7) *)
}

(** Connection storage: struct-of-arrays indexed by connection id.
    [cs_attrs] has length 0 when the edge carries no attributes. *)
type conns = {
  mutable cs_parent : int array;
  mutable cs_child : int array;
  mutable cs_attrs : Row.enc array;
  mutable cs_live : Bytes.t;
  mutable cs_len : int;
}

(** A materialized view of one connection (enumeration APIs only). *)
type conn = {
  cn_idx : int;  (** connection id within its edge *)
  cn_parent : int;  (** position in the parent node *)
  cn_child : int;  (** position in the child node *)
  cn_attrs : Row.enc;  (** encoded attributes; [[||]] when the edge has none *)
}

type adj

type edge_inst = {
  ei_name : string;
  ei_parent : string;
  ei_child : string;
  ei_parent_node : node_inst;  (** direct reference: cursor steps are O(1) *)
  ei_child_node : node_inst;
  ei_attr_schema : Schema.t;
  ei_conns : conns;
  mutable ei_adj : adj option;  (** built lazily on first navigation *)
  mutable ei_upd : Semantic.edge_updatability;
}

type t = {
  c_def : Co_schema.t;
  c_nodes : (string * node_inst) list;  (** in definition order *)
  c_edges : (string * edge_inst) list;
  mutable c_base_versions : (string * int) list;  (** staleness detection *)
}

exception Cache_error of string

val dummy_tuple : tuple
(** Placeholder element for {!Vec.create}. *)

val make_node :
  ?size_hint:int -> schema:Schema.t -> upd:Semantic.node_updatability option -> string -> node_inst
(** [make_node ~schema ~upd name] is an empty node instance; [size_hint]
    presizes the rowid index. *)

(** Decode boundary helpers: the cache stores dictionary-encoded rows;
    user-facing layers (TAKE, cursor delivery, sys.* rendering, base-table
    writes) decode through these. *)

val row : tuple -> Row.t
val col : tuple -> int -> Value.t
val conn_attrs : conn -> Row.t

(** Connection buffers (the fused fixpoint fills these directly). *)

val make_conns : ?size_hint:int -> attrs:bool -> unit -> conns
val push_conn : conns -> parent:int -> child:int -> attrs:Row.enc -> int

(** Per-connection accessors — hot paths, no boxing. *)

val conn_count : edge_inst -> int
val conn_parent_at : edge_inst -> int -> int
val conn_child_at : edge_inst -> int -> int
val conn_live_at : edge_inst -> int -> bool
val conn_attrs_at : edge_inst -> int -> Row.enc
val set_conn_live : edge_inst -> int -> bool -> unit

val conn_at : edge_inst -> int -> conn
(** [conn_at ei i] is a materialized view of connection [i] (live or not). *)

(** Lookups are case-insensitive. @raise Cache_error when absent. *)

val node : t -> string -> node_inst
val edge : t -> string -> edge_inst
val node_opt : t -> string -> node_inst option
val edge_opt : t -> string -> edge_inst option

(** [live_tuples ni] lists the node's live tuples in position order. *)
val live_tuples : node_inst -> tuple list

val live_count : node_inst -> int

(** [tuple ni pos] is the tuple at [pos] (live or not).
    @raise Cache_error on bad positions. *)
val tuple : node_inst -> int -> tuple

(** [conns_live ei] lists views of the live connections in id order. *)
val conns_live : edge_inst -> conn list

val live_conn_count : edge_inst -> int

(** [iter_conns_of_parent ei pos f] / [iter_conns_of_child ei pos f] apply
    [f] to the id of every connection (live or not) incident to the given
    position. Builds the adjacency on first use. *)

val iter_conns_of_parent : edge_inst -> int -> (int -> unit) -> unit
val iter_conns_of_child : edge_inst -> int -> (int -> unit) -> unit

(** [children cache ei parent_pos] is the positions of live child tuples
    connected to the parent tuple (traversal parent->child). *)
val children : t -> edge_inst -> int -> int list

(** [parents cache ei child_pos] is the positions of live parent tuples
    connected to the child tuple (reverse traversal, which XNF
    relationships permit). *)
val parents : t -> edge_inst -> int -> int list

(** [related cache ei ~from pos] traverses [ei] from node [from]: forward
    when [from] is the parent side, backward when the child side. Returns
    the target node name and positions.
    @raise Cache_error when [from] is neither partner. *)
val related : t -> edge_inst -> from:string -> int -> string * int list

(** [add_conn ei ~parent ~child ~attrs] appends a live connection, updating
    adjacency when built; returns its id. *)
val add_conn : edge_inst -> parent:int -> child:int -> attrs:Row.enc -> int

(** [add_tuple ni ~rowid row] appends a live tuple ([rowid] [-1] = no
    provenance); returns its position. *)
val add_tuple : node_inst -> rowid:int -> Row.enc -> int

(** [pos_of_rowid ni rowid] is the position caching base row [rowid], or
    [-1]. Allocation-free. *)
val pos_of_rowid : node_inst -> int -> int

(** [recompute_reachability cache] re-applies the reachability constraint
    inside the cache: root-node tuples seed a traversal along live
    connections in parent->child direction; unreached tuples and
    connections touching dead tuples are tombstoned. An instance whose
    projected definition has no root is left standing (its tuples are their
    own justification). *)
val recompute_reachability : t -> unit

(** [stale cache db] holds when any base table changed since the cache was
    loaded, other than through this cache's own propagation. *)
val stale : t -> Db.t -> bool

(** A snapshot lookup structure over one cached node: column value ->
    positions of live tuples. Rebuild after manipulation operations that
    change the keyed column. *)
type key_index

(** [build_key_index cache ~node ~col] indexes the live tuples of [node] by
    column [col] — O(1) point access into the cache, as OO1-style
    applications expect.
    @raise Cache_error on unknown node or column. *)
val build_key_index : t -> node:string -> col:string -> key_index

(** [lookup_key cache ki v] is the positions of live tuples whose keyed
    column equals [v]. *)
val lookup_key : t -> key_index -> Value.t -> int list

(** [lookup_key_one cache ki v] is the unique position for [v], if any. *)
val lookup_key_one : t -> key_index -> Value.t -> int option

(** [total_tuples cache] / [total_conns cache]: live counts across all
    components. *)

val total_tuples : t -> int
val total_conns : t -> int

(** [pp] prints a summary (per node the live tuple count, per edge the live
    connection count). *)
val pp : Format.formatter -> t -> unit
