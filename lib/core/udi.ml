(* Manipulation operations on the XNF cache (§3.7): update / delete /
   insert on component tuples, connect / disconnect on relationships —
   all propagated to the base tables through the nodes' view-updatability
   mappings and the relationships' updatability analysis:

     - FK relationships: connect sets the child's foreign key to the parent
       key, disconnect nullifies it;
     - USING (M:N) relationships: connect inserts a link tuple, disconnect
       deletes it;
     - columns mentioned in a relationship predicate can only change
       through connect/disconnect;
     - deleting a tuple disconnects the relationship instances attached to
       it (and only those — no cascading deletes), then removes the base
       row; reachability is re-established in the cache afterwards.

   Propagation runs immediately by default; [with_deferred]/[save] batch it
   — cache changes coalesce per tuple so that k updates to one tuple cost
   one base update (the cooperative-buffer idea of [KDG87], measured in
   E9).

   Concurrency control is optimistic, in the spirit of the workstation/
   server split of the paper's §1: the session records the version of every
   base table its cache was loaded from; before writing a table it
   validates that no OTHER writer has changed it since (the session's own
   writes advance the recorded versions). A conflict raises [Udi_error]
   and nothing further is written — refetch and reapply. [set_validation]
   turns this off for last-writer-wins semantics. *)

open Relational

exception Udi_error of string

let err fmt = Fmt.kstr (fun s -> raise (Udi_error s)) fmt

(* manipulation and propagation activity, in the global metrics registry *)
let m_updates = Obs.Metrics.counter "xnf.udi.updates"
let m_inserts = Obs.Metrics.counter "xnf.udi.inserts"
let m_deletes = Obs.Metrics.counter "xnf.udi.deletes"
let m_connects = Obs.Metrics.counter "xnf.udi.connects"
let m_disconnects = Obs.Metrics.counter "xnf.udi.disconnects"
let m_base_writes = Obs.Metrics.counter "xnf.udi.base_writes"
let m_saves = Obs.Metrics.counter "xnf.udi.saves"
let m_conflicts = Obs.Metrics.counter "xnf.udi.conflicts"

type pending =
  | P_delete of { table : string; rowid : int }
  | P_insert of { table : string; row : Row.t; node : string; pos : int }
  | P_link_insert of { table : string; row : Row.t }
  | P_link_delete of { table : string; match_cols : (int * Value.t) list }

type t = {
  u_db : Db.t;
  u_cache : Cache.t;
  mutable u_deferred : bool;
  mutable u_validate : bool;
  u_expected : (string, int) Hashtbl.t;  (** table -> version as of load / last own write *)
  mutable u_pending : pending list;  (** newest first; applied oldest first *)
  mutable u_dirty : (string * int) list;  (** (node, pos) with unpropagated updates *)
}

(** [session db cache] is a manipulation session with immediate propagation
    and optimistic validation against concurrent writers. *)
let session db cache =
  let expected = Hashtbl.create 8 in
  List.iter (fun (t, v) -> Hashtbl.replace expected t v) cache.Cache.c_base_versions;
  { u_db = db; u_cache = cache; u_deferred = false; u_validate = true; u_expected = expected;
    u_pending = []; u_dirty = [] }

(** [set_deferred ses flag] switches between immediate and deferred
    propagation; call {!save} to flush deferred work. *)
let set_deferred ses flag = ses.u_deferred <- flag

(** [set_validation ses flag] enables/disables optimistic conflict
    detection (default on). *)
let set_validation ses flag = ses.u_validate <- flag

(* optimistic check: the table must not have moved past what this session
   has seen; called before every base write *)
let check_conflict ses table =
  if ses.u_validate then begin
    let name = String.lowercase_ascii (Table.name table) in
    match Hashtbl.find_opt ses.u_expected name with
    | Some v when v <> Table.version table ->
      Obs.Metrics.incr m_conflicts;
      err "concurrent modification of %s since this composite object was loaded: refetch and reapply"
        (Table.name table)
    | _ -> ()
  end

(* after an own write: advance the session's and the cache's recorded
   versions so further own operations and staleness checks stay green *)
let record_write ses table =
  let name = String.lowercase_ascii (Table.name table) in
  Hashtbl.replace ses.u_expected name (Table.version table);
  ses.u_cache.Cache.c_base_versions <-
    (if List.mem_assoc name ses.u_cache.Cache.c_base_versions then
       List.map
         (fun (t, v) -> if String.equal t name then (t, Table.version table) else (t, v))
         ses.u_cache.Cache.c_base_versions
     else (name, Table.version table) :: ses.u_cache.Cache.c_base_versions)

let write_update ses table rowid row =
  check_conflict ses table;
  Obs.Metrics.incr m_base_writes;
  let r = Db.update_row ses.u_db table rowid row in
  record_write ses table;
  r

let write_insert ses table row =
  check_conflict ses table;
  Obs.Metrics.incr m_base_writes;
  let rowid = Db.insert_row ses.u_db table row in
  record_write ses table;
  rowid

let write_delete ses table rowid =
  check_conflict ses table;
  Obs.Metrics.incr m_base_writes;
  let r = Db.delete_row ses.u_db table rowid in
  record_write ses table;
  r

let node_table ses ni =
  match ni.Cache.ni_upd with
  | Some u -> Catalog.table (Db.catalog ses.u_db) u.Semantic.nu_table
  | None -> err "component %s is not updatable (derivation is not a simple view)" ni.Cache.ni_name

(* write the dirty columns of a cache tuple through to its base row *)
let propagate_update ses ni (t : Cache.tuple) =
  match ni.Cache.ni_upd with
  | Some u when t.Cache.t_rowid >= 0 -> begin
    let rowid = t.Cache.t_rowid in
    let table = Catalog.table (Db.catalog ses.u_db) u.Semantic.nu_table in
    match Table.get table rowid with
    | None -> err "base row of %s vanished (concurrent delete?)" ni.Cache.ni_name
    | Some base ->
      let base' = Array.copy base in
      Array.iteri (fun node_col base_col -> base'.(base_col) <- Cache.col t node_col)
        u.Semantic.nu_col_map;
      ignore (write_update ses table rowid base');
      t.Cache.t_dirty <- false
  end
  | _ -> err "component %s is not updatable" ni.Cache.ni_name

let mark_dirty ses ni (t : Cache.tuple) =
  if ses.u_deferred then begin
    if not t.Cache.t_dirty then begin
      t.Cache.t_dirty <- true;
      ses.u_dirty <- (ni.Cache.ni_name, t.Cache.t_pos) :: ses.u_dirty
    end
  end
  else propagate_update ses ni t

let queue ses p =
  if ses.u_deferred then ses.u_pending <- p :: ses.u_pending
  else begin
    let catalog = Db.catalog ses.u_db in
    match p with
    | P_delete { table; rowid } -> ignore (write_delete ses (Catalog.table catalog table) rowid)
    | P_insert { table; row; node; pos } ->
      let rowid = write_insert ses (Catalog.table catalog table) row in
      let ni = Cache.node ses.u_cache node in
      let t = Cache.tuple ni pos in
      t.Cache.t_rowid <- rowid;
      Intmap.set ni.Cache.ni_by_rowid rowid pos
    | P_link_insert { table; row } -> ignore (write_insert ses (Catalog.table catalog table) row)
    | P_link_delete { table; match_cols } ->
      let tbl = Catalog.table catalog table in
      let victims =
        List.filter
          (fun (_, row) ->
            List.for_all (fun (col, v) -> Value.equal row.(col) v) match_cols)
          (List.of_seq (Table.to_seq tbl))
      in
      check_conflict ses tbl;
      List.iter (fun (rowid, _) -> ignore (write_delete ses tbl rowid)) victims
  end

(* ---- tuple operations ---- *)

let live_tuple ni pos =
  let t = Cache.tuple ni pos in
  if not t.Cache.t_live then err "tuple %d of %s is not part of this composite object" pos ni.Cache.ni_name;
  t

(** [update ses ~node ~pos updates] changes columns of a cached tuple and
    propagates to the base table. Columns used by relationship predicates
    are rejected (change them with {!connect}/{!disconnect}).
    @raise Udi_error on non-updatable nodes or locked columns. *)
let update ses ~node ~pos (updates : (string * Value.t) list) =
  Obs.Metrics.incr m_updates;
  let ni = Cache.node ses.u_cache node in
  let t = live_tuple ni pos in
  ignore (node_table ses ni);
  List.iter
    (fun (col, v) ->
      match Schema.find_opt ni.Cache.ni_schema col with
      | None -> err "no column %s in %s" col node
      | Some i ->
        if List.mem i ni.Cache.ni_locked_cols then
          err "column %s of %s defines a relationship: use connect/disconnect" col node;
        t.Cache.t_row <- Array.copy t.Cache.t_row;
        t.Cache.t_row.(i) <- Dict.encode v)
    updates;
  mark_dirty ses ni t

(* the connection objects attached to a tuple, per edge, with side info *)
let incident_conns ses ~node ~pos =
  List.concat_map
    (fun (_, ei) ->
      let acc = ref [] in
      if String.equal ei.Cache.ei_parent node then
        Cache.iter_conns_of_parent ei pos (fun ci ->
            if Cache.conn_live_at ei ci then acc := (ei, `Parent, Cache.conn_at ei ci) :: !acc);
      if String.equal ei.Cache.ei_child node then
        Cache.iter_conns_of_child ei pos (fun ci ->
            if Cache.conn_live_at ei ci then acc := (ei, `Child, Cache.conn_at ei ci) :: !acc);
      List.rev !acc)
    ses.u_cache.Cache.c_edges

let do_disconnect ses ei (c : Cache.conn) ~deleting_child =
  let parent_ni = Cache.node ses.u_cache ei.Cache.ei_parent in
  let child_ni = Cache.node ses.u_cache ei.Cache.ei_child in
  (match ei.Cache.ei_upd with
  | Semantic.Upd_fk { fk_child_col; _ } ->
    (* nullify the child's FK — unless the child row itself is going away *)
    if not deleting_child then begin
      let child = live_tuple child_ni c.Cache.cn_child in
      child.Cache.t_row <- Array.copy child.Cache.t_row;
      child.Cache.t_row.(fk_child_col) <- Dict.null_id;
      mark_dirty ses child_ni child
    end
  | Semantic.Upd_link { link_table; parent_bind; child_bind; _ } ->
    let parent = live_tuple parent_ni c.Cache.cn_parent in
    let child = Cache.tuple child_ni c.Cache.cn_child in
    let table = Catalog.table (Db.catalog ses.u_db) link_table in
    let schema = Table.schema table in
    let match_cols =
      List.map
        (fun (ln, pc) -> (Schema.find schema ln, Cache.col parent pc))
        parent_bind
      @ List.map (fun (ln, cc) -> (Schema.find schema ln, Cache.col child cc)) child_bind
    in
    queue ses (P_link_delete { table = link_table; match_cols })
  | Semantic.Upd_readonly reason ->
    err "relationship %s is read-only: %s" ei.Cache.ei_name reason);
  Cache.set_conn_live ei c.Cache.cn_idx false

(** [delete ses ~node ~pos] removes a component tuple: disconnects its
    attached relationship instances, deletes the base row, and re-applies
    reachability in the cache. *)
let delete ses ~node ~pos =
  Obs.Metrics.incr m_deletes;
  let node = String.lowercase_ascii node in
  let ni = Cache.node ses.u_cache node in
  let t = live_tuple ni pos in
  (match ni.Cache.ni_upd, t.Cache.t_rowid with
  | Some u, rowid when rowid >= 0 ->
    (* disconnect attached instances; a conn where the deleted tuple is the
       FK-holding child disappears with the row itself *)
    List.iter
      (fun (ei, side, c) ->
        match ei.Cache.ei_upd, side with
        | Semantic.Upd_fk _, `Child ->
          (* the FK lives in the row being deleted *)
          Cache.set_conn_live ei c.Cache.cn_idx false
        | _, `Child -> do_disconnect ses ei c ~deleting_child:true
        | _, `Parent -> do_disconnect ses ei c ~deleting_child:false)
      (incident_conns ses ~node ~pos);
    t.Cache.t_live <- false;
    queue ses (P_delete { table = u.Semantic.nu_table; rowid })
  | _ -> err "component %s is not updatable" node);
  Cache.recompute_reachability ses.u_cache

(** [insert ses ~node row] adds a tuple to a component (and its base
    table). The new tuple is initially unconnected; connect it to make it
    reachable — until then it lives in the cache but is not part of the CO
    by the reachability constraint. Returns its cache position. *)
let insert ses ~node (row : Row.t) =
  Obs.Metrics.incr m_inserts;
  let ni = Cache.node ses.u_cache node in
  let table = node_table ses ni in
  let upd = Option.get ni.Cache.ni_upd in
  if Array.length row <> Schema.arity ni.Cache.ni_schema then
    err "insert into %s: expected %d values" node (Schema.arity ni.Cache.ni_schema);
  let base = Array.make (Schema.arity (Table.schema table)) Value.Null in
  Array.iteri (fun node_col base_col -> base.(base_col) <- row.(node_col)) upd.Semantic.nu_col_map;
  let pos = Cache.add_tuple ni ~rowid:(-1) (Row.encode row) in
  queue ses (P_insert { table = upd.Semantic.nu_table; row = base; node = ni.Cache.ni_name; pos });
  pos

(* ---- relationship operations ---- *)

(** [connect ses ~edge ~parent ~child ?attrs ()] creates a relationship
    instance between the parent tuple at [parent] and the child tuple at
    [child], propagating per the relationship's updatability (FK
    assignment or link-tuple insertion). [attrs] sets relationship
    attributes on USING relationships. *)
let connect ses ~edge ~parent ~child ?(attrs = []) () =
  Obs.Metrics.incr m_connects;
  let ei = Cache.edge ses.u_cache edge in
  let parent_ni = Cache.node ses.u_cache ei.Cache.ei_parent in
  let child_ni = Cache.node ses.u_cache ei.Cache.ei_child in
  let pt = live_tuple parent_ni parent in
  let ct = live_tuple child_ni child in
  let attr_row =
    Array.of_list
      (List.map
         (fun c ->
           match List.assoc_opt c.Schema.col_name attrs with
           | Some v -> v
           | None -> Value.Null)
         (Schema.columns ei.Cache.ei_attr_schema))
  in
  (match ei.Cache.ei_upd with
  | Semantic.Upd_fk { fk_parent_col; fk_child_col } ->
    ct.Cache.t_row <- Array.copy ct.Cache.t_row;
    (* both rows are encoded: the FK assignment copies the raw id *)
    ct.Cache.t_row.(fk_child_col) <- pt.Cache.t_row.(fk_parent_col);
    mark_dirty ses child_ni ct
  | Semantic.Upd_link { link_table; parent_bind; child_bind; attr_cols } ->
    let table = Catalog.table (Db.catalog ses.u_db) link_table in
    let schema = Table.schema table in
    let row = Array.make (Schema.arity schema) Value.Null in
    List.iter (fun (ln, pc) -> row.(Schema.find schema ln) <- Cache.col pt pc) parent_bind;
    List.iter (fun (ln, cc) -> row.(Schema.find schema ln) <- Cache.col ct cc) child_bind;
    List.iter
      (fun (ln, attr_pos) ->
        if attr_pos < Array.length attr_row then row.(Schema.find schema ln) <- attr_row.(attr_pos))
      attr_cols;
    queue ses (P_link_insert { table = link_table; row })
  | Semantic.Upd_readonly reason -> err "relationship %s is read-only: %s" edge reason);
  ignore (Cache.add_conn ei ~parent ~child ~attrs:(Row.encode attr_row))

(** [disconnect ses ~edge ~parent ~child] removes the relationship
    instance(s) between the two tuples; the child may become unreachable
    and leave the CO (reachability is re-applied). *)
let disconnect ses ~edge ~parent ~child =
  Obs.Metrics.incr m_disconnects;
  let ei = Cache.edge ses.u_cache edge in
  let found = ref false in
  for i = 0 to Cache.conn_count ei - 1 do
    if Cache.conn_live_at ei i && Cache.conn_parent_at ei i = parent
       && Cache.conn_child_at ei i = child
    then begin
      found := true;
      do_disconnect ses ei (Cache.conn_at ei i) ~deleting_child:false
    end
  done;
  if not !found then err "no %s connection between these tuples" edge;
  Cache.recompute_reachability ses.u_cache

(* ---- deferred propagation ---- *)

(** [pending_count ses] is the number of queued operations plus dirty
    tuples (the batch [save] will flush). *)
let pending_count ses = List.length ses.u_pending + List.length ses.u_dirty

(** [save ses] flushes deferred work: dirty tuples coalesce to one base
    update each; queued inserts/deletes/link operations apply in issue
    order. Refreshes the cache's staleness baseline afterwards. *)
let save ses =
  Obs.Metrics.incr m_saves;
  Obs.Trace.with_span "udi.save" @@ fun () ->
  (* coalesced updates first: a tuple updated k times writes once *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (node, pos) ->
      if not (Hashtbl.mem seen (node, pos)) then begin
        Hashtbl.replace seen (node, pos) ();
        let ni = Cache.node ses.u_cache node in
        let t = Cache.tuple ni pos in
        if t.Cache.t_live && t.Cache.t_dirty then propagate_update ses ni t
      end)
    ses.u_dirty;
  ses.u_dirty <- [];
  let ops = List.rev ses.u_pending in
  ses.u_pending <- [];
  let deferred = ses.u_deferred in
  ses.u_deferred <- false;
  List.iter (queue ses) ops;
  ses.u_deferred <- deferred;
  (* the cache is now in sync with what it wrote *)
  ses.u_cache.Cache.c_base_versions <-
    List.map
      (fun (name, v) ->
        match Catalog.table_opt (Db.catalog ses.u_db) name with
        | Some t -> (name, Table.version t)
        | None -> (name, v))
      ses.u_cache.Cache.c_base_versions

(** [with_deferred ses f] runs [f ()] with propagation deferred, then
    saves. *)
let with_deferred ses f =
  set_deferred ses true;
  Fun.protect
    ~finally:(fun () -> set_deferred ses false)
    (fun () ->
      let r = f () in
      save ses;
      r)
