(* The SQL/XNF application programming interface (Fig. 7).

   One [Api.t] is a session against a shared relational database: plain
   SQL statements execute on the relational engine unchanged, XNF
   statements go through composition → semantic rewrite → relational
   execution → cache load. The same database is freely shared between SQL
   applications and XNF applications — the central architectural claim of
   the paper. *)

open Relational

type t = {
  db : Db.t;
  reg : View_registry.t;
  mutable fetch_count : int;  (** composite objects loaded this session *)
  mutable rc_cap : int;  (** fetch-result cache capacity; 0 = disabled *)
  mutable rc : (string * Cache.t) list;  (** MRU-first result cache *)
}

(** Result of executing one statement through [exec]. *)
type outcome =
  | Fetched of Cache.t  (** an OUT OF ... TAKE query: the loaded CO *)
  | Co_deleted of int  (** OUT OF ... DELETE: number of base rows removed *)
  | Co_updated of int  (** OUT OF ... UPDATE: number of component tuples changed *)
  | View_defined of string
  | View_dropped of string
  | Sql of Db.exec_result  (** a plain SQL statement's result *)

exception Api_error of string

let err fmt = Fmt.kstr (fun s -> raise (Api_error s)) fmt

let m_fetches = Obs.Metrics.counter "xnf.fetches"
let m_rc_hits = Obs.Metrics.counter "xnf.fetchcache.hits"
let m_rc_misses = Obs.Metrics.counter "xnf.fetchcache.misses"
let m_rc_evictions = Obs.Metrics.counter "xnf.fetchcache.evictions"

(** [create db] opens an XNF session over [db]. *)
let create db = { db; reg = View_registry.create (); fetch_count = 0; rc_cap = 0; rc = [] }

(** [db api] is the underlying relational session. *)
let db api = api.db

(** [registry api] is the XNF view registry. *)
let registry api = api.reg

(** [fetch ?fixpoint api q] evaluates a parsed XNF query into a cache. *)
let fetch ?fixpoint api q =
  api.fetch_count <- api.fetch_count + 1;
  Obs.Metrics.incr m_fetches;
  Translate.fetch ?fixpoint api.db api.reg q

(** [set_result_cache api n] enables an LRU cache of the last [n] fetch
    results, keyed by query text and validated against base-table
    versions; [0] (the default) disables it, preserving fetch-per-call
    semantics. Any resize clears the cache. *)
let set_result_cache api n =
  api.rc_cap <- max 0 n;
  api.rc <- []

(* the result cache must not serve definitions that changed under it *)
let invalidate_result_cache api = api.rc <- []

(* fetch through the result cache: a hit is a cached, still-fresh cache
   for the same (trimmed) query text; stale entries count as misses and
   are re-fetched *)
let fetch_cached_parsed ?fixpoint api key q =
  if api.rc_cap = 0 then fetch ?fixpoint api q
  else begin
    match List.assoc_opt key api.rc with
    | Some cache when not (Cache.stale cache api.db) ->
      Obs.Metrics.incr m_rc_hits;
      api.rc <- (key, cache) :: List.remove_assoc key api.rc;
      cache
    | _ ->
      Obs.Metrics.incr m_rc_misses;
      let cache = fetch ?fixpoint api q in
      let rc = (key, cache) :: List.remove_assoc key api.rc in
      let rc =
        if List.length rc > api.rc_cap then begin
          Obs.Metrics.incr m_rc_evictions;
          List.filteri (fun i _ -> i < api.rc_cap) rc
        end
        else rc
      in
      api.rc <- rc;
      cache
  end

(** [fetch_string api sql] parses and evaluates an [OUT OF ... TAKE]
    query (through the result cache when enabled). *)
let fetch_string ?fixpoint api sql =
  fetch_cached_parsed ?fixpoint api (String.trim sql) (Xnf_parser.parse_query sql)

(* CO deletion (§3.7): all component tuples of the target CO are removed
   from their base tables. Every component must be updatable. *)
let delete_co api (q : Xnf_ast.query) =
  let cache = fetch api q in
  (* validate updatability up front so we fail before deleting anything *)
  List.iter
    (fun (name, ni) ->
      if Cache.live_count ni > 0 && ni.Cache.ni_upd = None then
        err "CO DELETE: component %s is not updatable" name)
    cache.Cache.c_nodes;
  let deleted = ref 0 in
  List.iter
    (fun (_, ni) ->
      match ni.Cache.ni_upd with
      | None -> ()
      | Some u ->
        let table = Catalog.table (Db.catalog api.db) u.Semantic.nu_table in
        List.iter
          (fun t ->
            match t.Cache.t_rowid with
            | Some rowid -> if Db.delete_row api.db table rowid then incr deleted
            | None -> ())
          (Cache.live_tuples ni))
    cache.Cache.c_nodes;
  !deleted

(* CO-level update (§3.7): the assignments apply to every tuple of the
   named component in the target CO, propagated through the udi layer
   (which enforces updatability and relationship-column locking). *)
let update_co api (q : Xnf_ast.query) (cu : Xnf_ast.co_update) =
  let cache = fetch api q in
  let ni = Cache.node cache cu.Xnf_ast.cu_node in
  let schema = ni.Cache.ni_schema in
  let env = Db.bind_env api.db in
  let sets =
    List.map (fun (col, e) -> (col, Binder.bind_expr env schema e)) cu.Xnf_ast.cu_sets
  in
  let ses = Udi.session api.db cache in
  let count = ref 0 in
  Udi.with_deferred ses (fun () ->
      List.iter
        (fun t ->
          let updates =
            List.map (fun (col, e) -> (col, Expr.eval t.Cache.t_row e)) sets
          in
          Udi.update ses ~node:cu.Xnf_ast.cu_node ~pos:t.Cache.t_pos updates;
          incr count)
        (Cache.live_tuples ni));
  !count

(** [exec api text] parses and executes one statement — XNF or plain SQL. *)
let exec api text : outcome =
  match Xnf_parser.parse_stmt text with
  | Xnf_ast.X_query q -> Fetched (fetch_cached_parsed api (String.trim text) q)
  | Xnf_ast.X_create_view (name, q) ->
    View_registry.define api.reg ~name q;
    invalidate_result_cache api;
    View_defined name
  | Xnf_ast.X_delete q -> Co_deleted (delete_co api q)
  | Xnf_ast.X_update (q, cu) -> Co_updated (update_co api q cu)
  | Xnf_ast.X_drop_view name -> begin
    match View_registry.find_opt api.reg name with
    | Some _ ->
      View_registry.drop api.reg name;
      invalidate_result_cache api;
      View_dropped name
    | None -> begin
      (* fall through to tabular views *)
      match Catalog.view_opt (Db.catalog api.db) name with
      | Some _ ->
        Catalog.drop_view (Db.catalog api.db) name;
        View_dropped name
      | None -> err "unknown view %s" name
    end
  end
  | Xnf_ast.X_sql stmt -> Sql (Db.exec_stmt_ast api.db stmt)

(** [explain_analyze api text] runs [text] — an XNF [OUT OF ... TAKE]
    query or a SQL SELECT — under the instrumented executor and returns a
    report: the pipeline span tree with per-stage timings plus per-operator
    actual row counts (cached nodes/edges for XNF, the physical plan for
    SQL). *)
let explain_analyze api text =
  match Xnf_parser.parse_stmt text with
  | Xnf_ast.X_query q ->
    let cache = fetch api q in
    let b = Buffer.create 256 in
    (match Obs.Trace.last () with
    | Some sp ->
      Buffer.add_string b "Stages:\n";
      Buffer.add_string b (Obs.Trace.to_string sp)
    | None -> ());
    Buffer.add_string b "Operators:\n";
    List.iter
      (fun (name, ni) ->
        Printf.bprintf b "  node %-24s rows=%d\n" name (Cache.live_count ni))
      cache.Cache.c_nodes;
    List.iter
      (fun (name, ei) ->
        Printf.bprintf b "  edge %-24s conns=%d\n" name (List.length (Cache.conns_live ei)))
      cache.Cache.c_edges;
    Printf.bprintf b "(%d tuples, %d connections)\n" (Cache.total_tuples cache)
      (Cache.total_conns cache);
    Buffer.contents b
  | Xnf_ast.X_sql (Sql_ast.S_select sel) -> Db.explain_analyze_ast api.db sel
  | _ -> err "EXPLAIN ANALYZE expects an XNF query or a SQL SELECT"

(** [session api cache] opens a manipulation session on a loaded CO. *)
let session api cache = Udi.session api.db cache

(** [fetch_count api] counts COs loaded so far. *)
let fetch_count api = api.fetch_count
