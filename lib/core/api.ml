(* The SQL/XNF application programming interface (Fig. 7).

   One [Api.t] is a session against a shared relational database: plain
   SQL statements execute on the relational engine unchanged, XNF
   statements go through composition → semantic rewrite → relational
   execution → cache load. The same database is freely shared between SQL
   applications and XNF applications — the central architectural claim of
   the paper. *)

open Relational

(** One advisory in the session log (the [sys.advisories] view): a
    {!Diag.t} flattened to strings, stamped with its source ("advise" for
    static analysis, "drift" for estimate-vs-actual divergence), the
    relationship and base table it concerns (empty when schema-level) and
    the fingerprint of the query it was raised for — joinable with
    [sys.statements]. *)
type advisory = {
  adv_seq : int;
  adv_source : string;
  adv_code : string;
  adv_severity : string;
  adv_edge : string;
  adv_table : string;
  adv_message : string;
  adv_hint : string;
  adv_fingerprint : string;
  adv_query : string;
  adv_at_ns : float;
}

type t = {
  db : Db.t;
  reg : View_registry.t;
  mutable fetch_count : int;  (** composite objects loaded this session *)
  mutable rc_cap : int;  (** fetch-result cache capacity; 0 = disabled *)
  mutable rc : (string * Cache.t) list;  (** MRU-first result cache *)
  mutable pc_cap : int;  (** fetch-plan cache capacity; 0 = disabled *)
  mutable pc : (string * Fetch_plan.t) list;  (** MRU-first plan cache *)
  prepared : (string, Fetch_plan.t) Hashtbl.t;  (** PREPARE'd plans by name *)
  mutable advisories : advisory list;  (** newest first, capped ring *)
  mutable adv_next : int;
  mutable drift_advisor :
    (Db.t -> Fetch_plan.t -> Cache.t -> (Diag.t * string option * string option) list) option;
      (** injected by the check layer ([Check.Plan_advisor.install]): Api
          cannot depend on [check], so the estimate-vs-actual drift
          detector arrives as a hook fired after plan-executed fetches *)
  mutable xnf_log : string list;
      (** re-parsable XNF view-DDL statements, newest first: the session's
          durable history, logged to the WAL as [R_ext] records and
          carried whole in checkpoint sections so recovery can replay
          definition-time view composition in original order *)
}

(** Result of executing one statement through [exec]. *)
type outcome =
  | Fetched of Cache.t  (** an OUT OF ... TAKE query: the loaded CO *)
  | Co_deleted of int  (** OUT OF ... DELETE: number of base rows removed *)
  | Co_updated of int  (** OUT OF ... UPDATE: number of component tuples changed *)
  | View_defined of string
  | View_dropped of string
  | Prepared of string  (** PREPARE name AS ...: plan compiled and stored *)
  | Sql of Db.exec_result  (** a plain SQL statement's result *)

exception Api_error of string

let err fmt = Fmt.kstr (fun s -> raise (Api_error s)) fmt

let m_fetches = Obs.Metrics.counter "xnf.fetches"
let m_rc_hits = Obs.Metrics.counter "xnf.fetchcache.hits"
let m_rc_misses = Obs.Metrics.counter "xnf.fetchcache.misses"
let m_rc_evictions = Obs.Metrics.counter "xnf.fetchcache.evictions"
let m_pc_hits = Obs.Metrics.counter "xnf.plancache.hits"
let m_pc_misses = Obs.Metrics.counter "xnf.plancache.misses"
let m_pc_invalidations = Obs.Metrics.counter "xnf.plancache.invalidations"
let m_pc_evictions = Obs.Metrics.counter "xnf.plancache.evictions"

(* ---- per-statement statistics ----

   Every public text entry point ([exec], [fetch_string]) and the parsed
   [fetch] run through [recording], which folds the execution into the
   {!Obs.Query_stats} aggregate keyed by the statement fingerprint
   (literals normalized to [?]) — exception-safely, so failed statements
   count as errors. Cache-hit/miss and hash-probe attribution is by
   before/after deltas of the global counters, exact in this
   single-threaded engine. *)

let snap_hits () =
  Obs.Metrics.counter_get "xnf.fetchcache.hits" + Obs.Metrics.counter_get "xnf.plancache.hits"

let snap_misses () =
  Obs.Metrics.counter_get "xnf.fetchcache.misses"
  + Obs.Metrics.counter_get "xnf.plancache.misses"

let snap_probes () = Obs.Metrics.counter_get "xnf.translate.hash_probes"

(* syntactic classification for the error path, where no outcome exists
   to inspect *)
let kind_of_text text =
  let up = String.uppercase_ascii (String.trim text) in
  let starts p = String.length up >= String.length p && String.sub up 0 (String.length p) = p in
  if starts "OUT" || starts "PREPARE" || starts "EXECUTE" || starts "CREATE XNF" then "xnf"
  else "sql"

let recording text ~kind_of ~rows_of f =
  let text = String.trim text in
  let fingerprint = Sql_lexer.fingerprint text in
  let t0 = Obs.Metrics.now_ns () in
  let h0 = snap_hits () and m0 = snap_misses () and p0 = snap_probes () in
  let finish kind rows error =
    Obs.Query_stats.record ~kind ~fingerprint ~text
      ~elapsed_ns:(Obs.Metrics.now_ns () -. t0)
      ~rows ~error ~cache_hits:(snap_hits () - h0) ~cache_misses:(snap_misses () - m0)
      ~hash_probes:(snap_probes () - p0)
  in
  match f () with
  | v ->
    finish (kind_of v) (rows_of v) false;
    v
  | exception e ->
    finish (kind_of_text text) 0 true;
    raise e

(* ---- the core-layer sys.* views ----

   [sys.plans] and [sys.fetch_cache] see session state (the plan and
   result caches) the relational layer cannot, so they are registered
   here rather than in {!Sys_catalog}. Like all virtual tables they are
   materialized per reference and never bump the catalog version. *)

let sys_make ~name cols rows =
  let t = Table.create ~name (Schema.make cols) in
  List.iter (fun r -> ignore (Table.insert t r)) rows;
  t

let sys_plans api () =
  (* prune invalidated cached plans eagerly, exactly as a lookup would —
     an invalidated plan's row disappears rather than showing stale *)
  api.pc <-
    List.filter
      (fun (_, p) ->
        let ok = Fetch_plan.valid api.db api.reg p in
        if not ok then Obs.Metrics.incr m_pc_invalidations;
        ok)
      api.pc;
  let row source name p =
    (* adaptive mid-fixpoint switches render as [edge=from->to] *)
    let switched = Fetch_plan.switches p in
    let edges =
      String.concat ","
        (List.map
           (fun (n, s) ->
             match List.find_opt (fun sw -> sw.Translate.sw_edge = n) switched with
             | Some sw ->
               n ^ "=" ^ Translate.strategy_name s ^ "->"
               ^ Translate.strategy_name sw.Translate.sw_to
             | None -> n ^ "=" ^ Translate.strategy_name s)
           (Fetch_plan.strategies p))
    in
    [| Value.Str source; Value.Str name; Value.Int (Fetch_plan.nparams p);
       Value.Int (Fetch_plan.hits p); Value.Bool (Fetch_plan.valid api.db api.reg p);
       Value.Int (Fetch_plan.reg_version p); Value.Int (Fetch_plan.catalog_version p);
       Value.Int (Fetch_plan.index_epoch p); Value.Str edges;
       Value.Str (Fetch_plan.text p) |]
  in
  let cached = List.map (fun (key, p) -> row "cache" key p) api.pc in
  let prepped =
    List.map
      (fun (name, p) -> row "prepared" name p)
      (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) api.prepared []))
  in
  sys_make ~name:"sys.plans"
    [ Schema.column "source" Schema.Ty_string; Schema.column "name" Schema.Ty_string;
      Schema.column "params" Schema.Ty_int; Schema.column "hits" Schema.Ty_int;
      Schema.column "valid" Schema.Ty_bool; Schema.column "reg_version" Schema.Ty_int;
      Schema.column "catalog_version" Schema.Ty_int;
      Schema.column "index_epoch" Schema.Ty_int; Schema.column "edges" Schema.Ty_string;
      Schema.column "text" Schema.Ty_string ]
    (cached @ prepped)

let m_advisories = Obs.Metrics.counter "xnf.advisor.logged"

let advisory_cap = 256

(** [add_advisories api ~source ~query entries] appends [(diag, edge,
    table)] findings to the session advisory log (surfaced by
    [sys.advisories]), fingerprinting [query] for the join with
    [sys.statements]. The log is a ring capped at 256 entries. *)
let add_advisories api ~source ~query entries =
  if entries <> [] then begin
    let fingerprint = Sql_lexer.fingerprint query in
    let at = Obs.Metrics.now_ns () in
    List.iter
      (fun ((d : Diag.t), edge, table) ->
        api.adv_next <- api.adv_next + 1;
        Obs.Metrics.incr m_advisories;
        api.advisories <-
          { adv_seq = api.adv_next; adv_source = source; adv_code = d.Diag.code;
            adv_severity = Diag.severity_to_string d.Diag.severity;
            adv_edge = Option.value ~default:"" edge;
            adv_table = Option.value ~default:"" table; adv_message = d.Diag.message;
            adv_hint = Option.value ~default:"" d.Diag.hint; adv_fingerprint = fingerprint;
            adv_query = query; adv_at_ns = at }
          :: api.advisories)
      entries;
    if List.length api.advisories > advisory_cap then
      api.advisories <- List.filteri (fun i _ -> i < advisory_cap) api.advisories
  end

(** [advisories api] is the session advisory log, newest first. *)
let advisories api = api.advisories

(** [clear_advisories api] empties the log (sequence numbers keep
    rising). *)
let clear_advisories api = api.advisories <- []

(** [set_drift_advisor api f] installs (or, with [None], removes) the
    estimate-vs-actual drift detector. While installed, every
    plan-executed fetch runs [f db plan cache] afterwards and logs its
    findings with source ["drift"]; fetches route through a compiled plan
    even with the plan cache disabled so a plan is always in hand.
    Detector exceptions are swallowed — advice must never break a fetch. *)
let set_drift_advisor api f = api.drift_advisor <- f

let record_drift api plan cache =
  match api.drift_advisor with
  | None -> ()
  | Some f ->
    let entries = try f api.db plan cache with _ -> [] in
    add_advisories api ~source:"drift" ~query:(Fetch_plan.text plan) entries

let sys_advisories api () =
  let rows =
    List.rev_map
      (fun (a : advisory) ->
        [| Value.Int a.adv_seq; Value.Str a.adv_source; Value.Str a.adv_code;
           Value.Str a.adv_severity; Value.Str a.adv_edge; Value.Str a.adv_table;
           Value.Str a.adv_message; Value.Str a.adv_hint; Value.Str a.adv_fingerprint;
           Value.Str a.adv_query; Value.Float (a.adv_at_ns /. 1e9) |])
      api.advisories
  in
  sys_make ~name:"sys.advisories"
    [ Schema.column "seq" Schema.Ty_int; Schema.column "source" Schema.Ty_string;
      Schema.column "code" Schema.Ty_string; Schema.column "severity" Schema.Ty_string;
      Schema.column "edge" Schema.Ty_string; Schema.column "table_name" Schema.Ty_string;
      Schema.column "message" Schema.Ty_string; Schema.column "hint" Schema.Ty_string;
      Schema.column "fingerprint" Schema.Ty_string; Schema.column "query_text" Schema.Ty_string;
      Schema.column "at_s" Schema.Ty_float ]
    rows

let sys_fetch_cache api () =
  let rows =
    List.map
      (fun (key, cache) ->
        [| Value.Str key; Value.Int (Cache.total_tuples cache);
           Value.Int (Cache.total_conns cache);
           Value.Bool (Cache.stale cache api.db) |])
      api.rc
  in
  (* "cache_key", not "key": KEY is a SQL keyword (PRIMARY KEY) and
     would be unselectable *)
  sys_make ~name:"sys.fetch_cache"
    [ Schema.column "cache_key" Schema.Ty_string; Schema.column "tuples" Schema.Ty_int;
      Schema.column "conns" Schema.Ty_int; Schema.column "stale" Schema.Ty_bool ]
    rows

(* ---- XNF view durability ----

   The view registry composes imports at definition time, so the current
   registry state cannot generally be rebuilt from the surviving views'
   texts alone (a view may import another that was later dropped). The
   durable form is therefore the ordered DDL history: each CREATE/DROP of
   an XNF view is logged to the WAL as an [R_ext {tag="xnf"}] record and
   the whole history rides in one checkpoint section per statement.
   Recovery clears the registry and replays the history in order. *)

let ext_tag = "xnf"

(* apply one recovered XNF DDL statement to the registry. Damage-tolerant:
   recovery must never raise, and divergence is what the crash oracle's
   digest comparison exists to catch. *)
let apply_logged api payload =
  (try
     match Xnf_parser.parse_stmt payload with
     | Xnf_ast.X_create_view (name, q) -> View_registry.define api.reg ~name q
     | Xnf_ast.X_drop_view name ->
       if View_registry.find_opt api.reg name <> None then View_registry.drop api.reg name
     | _ -> ()
   with _ -> ());
  api.xnf_log <- payload :: api.xnf_log

(* record one live XNF DDL statement: WAL first, then the session log *)
let log_xnf api (stmt : Xnf_ast.stmt) =
  let payload = Xnf_ast.stmt_to_string stmt in
  Txn.log_meta (Db.txn api.db) (Wal.R_ext { tag = ext_tag; payload });
  api.xnf_log <- payload :: api.xnf_log

(** [create db] opens an XNF session over [db], registers the
    session-level [sys.plans] / [sys.fetch_cache] views on its catalog,
    and wires XNF view durability into [db]'s checkpoint/recovery hooks
    (any XNF view DDL recovered before this call is applied now). *)
let create db =
  let api =
    { db; reg = View_registry.create (); fetch_count = 0; rc_cap = 0; rc = []; pc_cap = 0;
      pc = []; prepared = Hashtbl.create 8; advisories = []; adv_next = 0; drift_advisor = None;
      xnf_log = [] }
  in
  Catalog.register_virtual (Db.catalog db) ~name:"sys.plans" (sys_plans api);
  Catalog.register_virtual (Db.catalog db) ~name:"sys.fetch_cache" (sys_fetch_cache api);
  Catalog.register_virtual (Db.catalog db) ~name:"sys.advisories" (sys_advisories api);
  Db.set_checkpoint_extra db
    (Some (fun () -> List.rev_map (fun s -> (ext_tag, s)) api.xnf_log));
  Db.set_ext_handler db
    (Some (fun ~tag ~payload -> if tag = ext_tag then apply_logged api payload));
  api

(** [db api] is the underlying relational session. *)
let db api = api.db

(** [registry api] is the XNF view registry. *)
let registry api = api.reg

(* ---- the plan cache ----

   Keyed by query text, validated against the (registry, catalog, index)
   version snapshot recorded at compile time. Invalidation is lazy: a
   version mismatch on lookup drops the entry, counts as an
   invalidation, and falls through to recompilation. *)

(** [set_plan_cache api n] enables an LRU cache of the last [n] compiled
    fetch plans; [0] (the default) disables it and recompiles per fetch.
    Any resize clears the cache. *)
let set_plan_cache api n =
  api.pc_cap <- max 0 n;
  api.pc <- []

let pc_lookup api key : Fetch_plan.t option =
  if api.pc_cap = 0 then None
  else begin
    match List.assoc_opt key api.pc with
    | Some plan when Fetch_plan.valid api.db api.reg plan ->
      Obs.Metrics.incr m_pc_hits;
      Fetch_plan.note_hit plan;
      api.pc <- (key, plan) :: List.remove_assoc key api.pc;
      Some plan
    | Some _ ->
      (* schema/index/view versions moved since compilation *)
      Obs.Metrics.incr m_pc_invalidations;
      api.pc <- List.remove_assoc key api.pc;
      None
    | None -> None
  end

let pc_store api key plan : Fetch_plan.t =
  if api.pc_cap > 0 then begin
    let pc = (key, plan) :: List.remove_assoc key api.pc in
    let pc =
      if List.length pc > api.pc_cap then begin
        Obs.Metrics.incr m_pc_evictions;
        List.filteri (fun i _ -> i < api.pc_cap) pc
      end
      else pc
    in
    api.pc <- pc
  end;
  plan

(* compile [q] through the plan cache (a miss compiles and stores) *)
let plan_for ?key api q : Fetch_plan.t =
  let key = match key with Some k -> k | None -> Xnf_ast.query_to_string q in
  match pc_lookup api key with
  | Some plan -> plan
  | None ->
    if api.pc_cap > 0 then Obs.Metrics.incr m_pc_misses;
    pc_store api key (Fetch_plan.compile api.db api.reg q)

(** [plans api] lists the cached plans, most recently used first. *)
let plans api = api.pc

(** [prepared_plans api] lists PREPARE'd plans, sorted by name. *)
let prepared_plans api =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) api.prepared [])

let count_fetch api =
  api.fetch_count <- api.fetch_count + 1;
  Obs.Metrics.incr m_fetches

(* the unrecorded fetch: internal callers ([exec], CO update/delete,
   EXPLAIN ANALYZE) record at their own statement granularity *)
let fetch_raw ?fixpoint api q =
  count_fetch api;
  match api.drift_advisor with
  | None ->
    if api.pc_cap = 0 then Translate.fetch ?fixpoint api.db api.reg q
    else Fetch_plan.execute ?fixpoint api.db (plan_for api q)
  | Some _ ->
    (* drift-instrumented: always go through a compiled plan so the
       detector has estimates to compare against *)
    let plan = plan_for api q in
    let cache = Fetch_plan.execute ?fixpoint api.db plan in
    record_drift api plan cache;
    cache

(** [fetch ?fixpoint api q] evaluates a parsed XNF query into a cache
    (through the plan cache when enabled); the execution is folded into
    the per-statement statistics. *)
let fetch ?fixpoint api q =
  recording (Xnf_ast.query_to_string q)
    ~kind_of:(fun _ -> "xnf")
    ~rows_of:Cache.total_tuples
    (fun () -> fetch_raw ?fixpoint api q)

(** [set_result_cache api n] enables an LRU cache of the last [n] fetch
    results, keyed by query text and validated against base-table
    versions; [0] (the default) disables it, preserving fetch-per-call
    semantics. Any resize clears the cache. *)
let set_result_cache api n =
  api.rc_cap <- max 0 n;
  api.rc <- []

(* the result cache must not serve definitions that changed under it *)
let invalidate_result_cache api = api.rc <- []

(* result-cache lookup: a hit is a cached, still-fresh cache for the same
   (trimmed) query text; stale or absent entries count as misses *)
let rc_lookup api key : Cache.t option =
  if api.rc_cap = 0 then None
  else begin
    match List.assoc_opt key api.rc with
    | Some cache when not (Cache.stale cache api.db) ->
      Obs.Metrics.incr m_rc_hits;
      api.rc <- (key, cache) :: List.remove_assoc key api.rc;
      Some cache
    | _ ->
      Obs.Metrics.incr m_rc_misses;
      None
  end

let rc_store api key cache : Cache.t =
  if api.rc_cap > 0 then begin
    let rc = (key, cache) :: List.remove_assoc key api.rc in
    let rc =
      if List.length rc > api.rc_cap then begin
        Obs.Metrics.incr m_rc_evictions;
        List.filteri (fun i _ -> i < api.rc_cap) rc
      end
      else rc
    in
    api.rc <- rc
  end;
  cache

let fetch_cached_parsed ?fixpoint api key q =
  match rc_lookup api key with
  | Some cache -> cache
  | None -> rc_store api key (fetch_raw ?fixpoint api q)

(** [fetch_string api sql] parses and evaluates an [OUT OF ... TAKE]
    query, through the result cache and the plan cache when enabled. A
    plan-cache hit on the trimmed text skips parsing entirely. The
    execution is folded into the per-statement statistics. *)
let fetch_string ?fixpoint api sql =
  recording sql ~kind_of:(fun _ -> "xnf") ~rows_of:Cache.total_tuples @@ fun () ->
  let key = String.trim sql in
  match rc_lookup api key with
  | Some cache -> cache
  | None ->
    let cache =
      match pc_lookup api key with
      | Some plan ->
        count_fetch api;
        let c = Fetch_plan.execute ?fixpoint api.db plan in
        record_drift api plan c;
        c
      | None ->
        let q = Xnf_parser.parse_query sql in
        if api.pc_cap = 0 then fetch_raw ?fixpoint api q
        else begin
          Obs.Metrics.incr m_pc_misses;
          let plan = pc_store api key (Fetch_plan.compile api.db api.reg q) in
          count_fetch api;
          let c = Fetch_plan.execute ?fixpoint api.db plan in
          record_drift api plan c;
          c
        end
    in
    rc_store api key cache

(* ---- prepared statements (PREPARE / EXECUTE) ---- *)

(** [prepare api ~name q] compiles [q] and stores the plan under [name]
    (case-insensitive), replacing any previous plan of that name. *)
let prepare api ~name q =
  Hashtbl.replace api.prepared (String.lowercase_ascii name)
    (Fetch_plan.compile api.db api.reg q)

(** [execute_prepared ?fixpoint api name vals] runs a PREPARE'd plan with
    [vals] bound to its [?] slots in lexical order. A plan invalidated by
    DDL since PREPARE is transparently recompiled. Parameterized results
    never enter the text-keyed result cache. *)
let execute_prepared ?fixpoint api name (vals : Value.t list) =
  let key = String.lowercase_ascii name in
  match Hashtbl.find_opt api.prepared key with
  | None -> err "unknown prepared statement %s" name
  | Some plan ->
    let plan =
      if Fetch_plan.valid api.db api.reg plan then begin
        Obs.Metrics.incr m_pc_hits;
        Fetch_plan.note_hit plan;
        plan
      end
      else begin
        Obs.Metrics.incr m_pc_invalidations;
        let p = Fetch_plan.compile api.db api.reg (Fetch_plan.query plan) in
        Hashtbl.replace api.prepared key p;
        p
      end
    in
    count_fetch api;
    (try
       let c = Fetch_plan.execute ?fixpoint ~params:(Array.of_list vals) api.db plan in
       record_drift api plan c;
       c
     with Invalid_argument msg -> err "%s" msg)

(* CO deletion (§3.7): all component tuples of the target CO are removed
   from their base tables. Every component must be updatable. *)
let delete_co api (q : Xnf_ast.query) =
  let cache = fetch_raw api q in
  (* validate updatability up front so we fail before deleting anything *)
  List.iter
    (fun (name, ni) ->
      if Cache.live_count ni > 0 && ni.Cache.ni_upd = None then
        err "CO DELETE: component %s is not updatable" name)
    cache.Cache.c_nodes;
  let deleted = ref 0 in
  Db.with_statement api.db (fun () ->
      List.iter
        (fun (_, ni) ->
          match ni.Cache.ni_upd with
          | None -> ()
          | Some u ->
            let table = Catalog.table (Db.catalog api.db) u.Semantic.nu_table in
            List.iter
              (fun t ->
                let rowid = t.Cache.t_rowid in
                if rowid >= 0 && Db.delete_row api.db table rowid then incr deleted)
              (Cache.live_tuples ni))
        cache.Cache.c_nodes);
  !deleted

(* CO-level update (§3.7): the assignments apply to every tuple of the
   named component in the target CO, propagated through the udi layer
   (which enforces updatability and relationship-column locking). *)
let update_co api (q : Xnf_ast.query) (cu : Xnf_ast.co_update) =
  let cache = fetch_raw api q in
  let ni = Cache.node cache cu.Xnf_ast.cu_node in
  let schema = ni.Cache.ni_schema in
  let env = Db.bind_env api.db in
  let sets =
    List.map (fun (col, e) -> (col, Binder.bind_expr env schema e)) cu.Xnf_ast.cu_sets
  in
  let ses = Udi.session api.db cache in
  let count = ref 0 in
  Db.with_statement api.db (fun () ->
      Udi.with_deferred ses (fun () ->
          List.iter
            (fun t ->
              let row = Cache.row t in
              let updates = List.map (fun (col, e) -> (col, Expr.eval row e)) sets in
              Udi.update ses ~node:cu.Xnf_ast.cu_node ~pos:t.Cache.t_pos updates;
              incr count)
            (Cache.live_tuples ni)));
  !count

let rows_of_outcome = function
  | Fetched c -> Cache.total_tuples c
  | Co_deleted n | Co_updated n -> n
  | View_defined _ | View_dropped _ | Prepared _ -> 0
  | Sql (Db.Rows r) -> List.length r.Db.rrows
  | Sql (Db.Affected n) -> n
  | Sql (Db.Done _) -> 0

(** [exec api text] parses and executes one statement — XNF or plain SQL.
    Every execution (including failures) is folded into the per-statement
    statistics and, when over the threshold, the slow-query log. *)
let exec api text : outcome =
  recording text
    ~kind_of:(function Sql _ -> "sql" | _ -> "xnf")
    ~rows_of:rows_of_outcome
  @@ fun () ->
  match Xnf_parser.parse_stmt text with
  | Xnf_ast.X_query q -> Fetched (fetch_cached_parsed api (String.trim text) q)
  | Xnf_ast.X_create_view (name, q) ->
    View_registry.define api.reg ~name q;
    log_xnf api (Xnf_ast.X_create_view (name, q));
    invalidate_result_cache api;
    View_defined name
  | Xnf_ast.X_delete q -> Co_deleted (delete_co api q)
  | Xnf_ast.X_update (q, cu) -> Co_updated (update_co api q cu)
  | Xnf_ast.X_drop_view name -> begin
    match View_registry.find_opt api.reg name with
    | Some _ ->
      View_registry.drop api.reg name;
      log_xnf api (Xnf_ast.X_drop_view name);
      invalidate_result_cache api;
      View_dropped name
    | None -> begin
      (* fall through to tabular views, via the engine so the drop is
         WAL-logged *)
      match Catalog.view_opt (Db.catalog api.db) name with
      | Some _ ->
        ignore (Db.exec_stmt_ast api.db (Sql_ast.S_drop_view name));
        View_dropped name
      | None -> err "unknown view %s" name
    end
  end
  | Xnf_ast.X_prepare (name, q) ->
    prepare api ~name q;
    Prepared name
  | Xnf_ast.X_execute (name, vals) -> Fetched (execute_prepared api name vals)
  | Xnf_ast.X_sql stmt -> Sql (Db.exec_stmt_ast api.db stmt)

(** [explain_analyze api text] runs [text] — an XNF [OUT OF ... TAKE]
    query or a SQL SELECT — under the instrumented executor and returns a
    report: the pipeline span tree with per-stage timings plus per-operator
    actual row counts (cached nodes/edges for XNF, the physical plan for
    SQL). *)
let explain_analyze api text =
  match Xnf_parser.parse_stmt text with
  | Xnf_ast.X_query q ->
    (* resolve the plan (cache hit or fresh compile) and execute through
       it directly — not [fetch_raw]'s internal compile — so adaptive
       mid-fixpoint switches land on the plan in hand and annotate the
       operator lines below. One enclosing span keeps compile and
       execution under the same traced root. *)
    let seq0 = api.adv_next in
    let plan, cache =
      Obs.Trace.with_span "xnf.explain" @@ fun () ->
      let plan = plan_for api q in
      count_fetch api;
      let cache = Fetch_plan.execute api.db plan in
      record_drift api plan cache;
      (plan, cache)
    in
    let strategies = Fetch_plan.strategies plan in
    let switched = Fetch_plan.switches plan in
    let b = Buffer.create 256 in
    (match Obs.Trace.last () with
    | Some sp ->
      Buffer.add_string b "Stages:\n";
      Buffer.add_string b (Obs.Trace.to_string sp)
    | None -> ());
    Buffer.add_string b "Operators:\n";
    List.iter
      (fun (name, ni) ->
        Printf.bprintf b "  node %-24s rows=%d\n" name (Cache.live_count ni))
      cache.Cache.c_nodes;
    List.iter
      (fun (name, ei) ->
        let strategy =
          match List.assoc_opt name strategies with
          | Some s -> Translate.strategy_name s
          | None -> "generic"
        in
        let switch_note =
          match List.find_opt (fun sw -> sw.Translate.sw_edge = name) switched with
          | Some sw ->
            Printf.sprintf " (switched to %s, round %d)"
              (Translate.strategy_name sw.Translate.sw_to)
              sw.Translate.sw_round
          | None -> ""
        in
        Printf.bprintf b "  edge %-24s conns=%d strategy=%s%s\n" name
          (List.length (Cache.conns_live ei)) strategy switch_note)
      cache.Cache.c_edges;
    Printf.bprintf b "(%d tuples, %d connections)\n" (Cache.total_tuples cache)
      (Cache.total_conns cache);
    (* drift advisories the instrumented fetch just raised, if any *)
    let fresh = List.filter (fun (a : advisory) -> a.adv_seq > seq0) api.advisories in
    if fresh <> [] then begin
      Buffer.add_string b "Advisories:\n";
      List.iter
        (fun a -> Printf.bprintf b "  %s[%s]: %s\n" a.adv_severity a.adv_code a.adv_message)
        (List.rev fresh)
    end;
    Buffer.contents b
  | Xnf_ast.X_sql (Sql_ast.S_select sel) -> Db.explain_analyze_ast api.db sel
  | _ -> err "EXPLAIN ANALYZE expects an XNF query or a SQL SELECT"

(** [checkpoint api] snapshots the full session state — relational
    catalog plus the XNF view history — into the data directory and
    truncates the WAL. Returns the checkpoint LSN. *)
let checkpoint api = Db.checkpoint api.db

(** [recover api] rebuilds the whole session from the data directory.
    The XNF view registry is cleared and its DDL history replayed (the
    registry version moves, so cached fetch plans invalidate lazily with
    countable [xnf.plancache.invalidations] deltas); the result cache is
    dropped outright since recovered tables may no longer back its
    entries. *)
let recover api =
  View_registry.clear api.reg;
  api.xnf_log <- [];
  invalidate_result_cache api;
  Db.recover api.db

(** [session api cache] opens a manipulation session on a loaded CO. *)
let session api cache = Udi.session api.db cache

(** [fetch_count api] counts COs loaded so far. *)
let fetch_count api = api.fetch_count
