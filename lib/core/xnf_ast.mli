(** Abstract syntax of the XNF language extensions (§3 of the paper).

    An XNF query is the CO constructor

    {[ OUT OF <bindings> [WHERE <restrictions>] TAKE <take-list> ]}

    where bindings introduce component tables (nodes) from SQL
    derivations, relationships (edges) from RELATE clauses, or import all
    components of a previously defined XNF view. Restrictions qualify
    nodes or edges with SUCH THAT predicates that may contain path
    expressions; the TAKE clause is the structural projection.

    Plain SQL fragments reuse {!Relational.Sql_ast} wholesale — XNF node
    definitions are ordinary SQL SELECTs, as in the paper. *)

open Relational

(** Predicates in SUCH THAT clauses: SQL expressions extended with path
    expressions (§3.5). *)
type xexpr =
  | X_col of string option * string
  | X_lit of Value.t
  | X_cmp of Expr.cmp * xexpr * xexpr
  | X_arith of Expr.arith_op * xexpr * xexpr
  | X_neg of xexpr
  | X_and of xexpr * xexpr
  | X_or of xexpr * xexpr
  | X_not of xexpr
  | X_is_null of xexpr
  | X_is_not_null of xexpr
  | X_like of xexpr * xexpr
  | X_in_list of xexpr * xexpr list
  | X_fn of string * xexpr list
  | X_count_path of path
      (** [COUNT(v->edge->...)]: number of distinct reachable target
          tuples *)
  | X_exists_path of path  (** [EXISTS v->edge->...]: non-emptiness *)
  | X_param of int
      (** [?] placeholder, numbered in lexical order over the statement;
          substituted with a literal before evaluation *)

(** A path expression: a start designator followed by steps. The start is
    either a variable bound by the enclosing restriction (tuple-rooted
    path) or a node name (set-rooted path over all tuples of that node). *)
and path = { p_start : string; p_steps : step list }

(** One [->] step: crossing an edge by name, or landing on a node —
    optionally binding a variable and qualifying with a predicate
    ("qualified path expression"). Node steps also disambiguate direction
    for cyclic relationships. *)
and step =
  | Step_edge of string
  | Step_node of { sn_node : string; sn_var : string option; sn_pred : xexpr option }

(** One OUT OF binding. *)
type binding =
  | B_node of { bn_name : string; bn_query : Sql_ast.select }
      (** [name AS (SELECT ...)]; the shorthand [name AS table] parses as
          [SELECT * FROM table] *)
  | B_edge of {
      be_name : string;
      be_parent : string;
      be_parent_var : string option;  (** role variable, required for cyclic edges *)
      be_child : string;
      be_child_var : string option;
      be_attrs : (Sql_ast.expr * string) list;  (** WITH ATTRIBUTES expr [AS name] *)
      be_using : (string * string) option;  (** USING base-table [alias] *)
      be_pred : Sql_ast.expr;
    }
  | B_view of string  (** import all components of an XNF view *)

(** A SUCH THAT restriction (§3.3). *)
type restriction =
  | R_node of { rn_node : string; rn_var : string option; rn_pred : xexpr }
  | R_edge of { re_edge : string; re_parent_var : string; re_child_var : string; re_pred : xexpr }

type take_cols = Take_all_cols | Take_cols of string list
type take_item = Take_node of string * take_cols | Take_edge of string
type take = Take_star | Take_items of take_item list
type query = { q_out_of : binding list; q_where : restriction list; q_take : take }

(** CO-level update: [SET] assignments applied to every tuple of one
    component of the target CO (§3.7). *)
type co_update = { cu_node : string; cu_sets : (string * Sql_ast.expr) list }

(** Top-level XNF statements. *)
type stmt =
  | X_query of query
  | X_create_view of string * query
  | X_delete of query  (** [OUT OF ... WHERE ... DELETE *]: CO deletion (§3.7) *)
  | X_update of query * co_update
      (** [OUT OF ... WHERE ... UPDATE node SET col = expr, ...] *)
  | X_drop_view of string
  | X_prepare of string * query
      (** [PREPARE name AS OUT OF ... TAKE ...]: compile once, cache the
          plan under [name]; [?] markers become parameter slots bound at
          EXECUTE time *)
  | X_execute of string * Value.t list
      (** [EXECUTE name (v1, ...)]: run a prepared plan with the given
          parameter values *)
  | X_sql of Sql_ast.stmt  (** plain SQL falls through to the relational engine *)

(** Pretty-printers (round-trip tested against the XNF parser). *)

val pp_xexpr : Format.formatter -> xexpr -> unit
val pp_path : Format.formatter -> path -> unit
val pp_step : Format.formatter -> step -> unit
val pp_binding : Format.formatter -> binding -> unit
val pp_restriction : Format.formatter -> restriction -> unit
val pp_take_item : Format.formatter -> take_item -> unit
val pp_query : Format.formatter -> query -> unit
val pp_stmt : Format.formatter -> stmt -> unit

(** [query_to_string q] / [stmt_to_string s] render re-parsable XNF
    syntax. *)

val query_to_string : query -> string
val stmt_to_string : stmt -> string

(** [xexpr_of_sql e] embeds a plain SQL expression (path-free by
    construction).
    @raise Invalid_argument
      on constructs not representable in SUCH THAT predicates
      (subqueries, CASE, aggregates). *)
val xexpr_of_sql : Sql_ast.expr -> xexpr

(** [sql_of_xexpr e] is the inverse embedding; [None] when [e] contains a
    path expression (such predicates are evaluated over the CO instance,
    not pushed into SQL). *)
val sql_of_xexpr : xexpr -> Sql_ast.expr option

(** [has_path e] holds when the predicate contains a path expression. *)
val has_path : xexpr -> bool

(** [subst_params_xexpr env e] replaces every [X_param i] with the literal
    [env.(i)], descending into qualified-path-step predicates.
    @raise Invalid_argument when a slot is out of range. *)
val subst_params_xexpr : Value.t array -> xexpr -> xexpr

(** [subst_params_query env q] substitutes parameters through every
    expression position of [q]: node queries, RELATE predicates and
    attributes, and SUCH THAT restrictions. *)
val subst_params_query : Value.t array -> query -> query

(** [count_params_query q] is the number of parameter slots in [q] (1 + the
    highest [?] index appearing anywhere, 0 when none). *)
val count_params_query : query -> int
