(* XNF view catalog and query composition (§3.2, §3.6).

   An XNF view is a named CO definition plus any path-based restrictions
   that could not be folded into SQL. Composition implements the closure
   property: a query's OUT OF clause may import views (merging their
   components), add fresh nodes/edges, restrict, and project — and the
   result can itself be named as a view, to any depth.

   SQL-expressible restrictions are folded at composition time:
     - node restrictions wrap the node derivation in
       [SELECT * FROM (q) var WHERE pred] — an updatable wrapper the
       relational rewrite then merges and pushes down;
     - edge restrictions are ANDed into the relationship predicate after
       renaming the restriction variables to the edge's own aliases.
   Path-containing restrictions are kept symbolic and evaluated against the
   materialized instance by the translator. *)

open Relational
open Xnf_ast

type view = {
  v_name : string;
  v_def : Co_schema.t;
  v_path_restrs : restriction list;  (** restrictions containing path expressions *)
}

type t = {
  views : (string, view) Hashtbl.t;
  mutable version : int;  (** bumped on every define/drop; keys cached fetch plans *)
}

exception View_error of string

let err fmt = Fmt.kstr (fun s -> raise (View_error s)) fmt

(** [create ()] is an empty registry. *)
let create () = { views = Hashtbl.create 16; version = 0 }

(** [version reg] counts definition changes since creation. *)
let version reg = reg.version

(** [find_opt reg name] looks a view up. *)
let find_opt reg name = Hashtbl.find_opt reg.views (String.lowercase_ascii name)

(** [drop reg name] removes a view. @raise View_error when absent. *)
let drop reg name =
  let key = String.lowercase_ascii name in
  if not (Hashtbl.mem reg.views key) then err "[XNF003] unknown XNF view %s" name;
  Hashtbl.remove reg.views key;
  reg.version <- reg.version + 1

(** [names reg] lists registered view names, sorted. *)
let names reg = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) reg.views [])

(** [clear reg] removes every view and bumps the version (recovery's
    blank slate — cached fetch plans keyed on the old version stay
    invalid even if the same definitions are replayed back). *)
let clear reg =
  Hashtbl.reset reg.views;
  reg.version <- reg.version + 1

(* rename qualifiers in a SQL expression: used to align edge-restriction
   variables with the edge's own predicate aliases *)
let rec rename_quals (mapping : (string * string) list) (e : Sql_ast.expr) : Sql_ast.expr =
  let r = rename_quals mapping in
  match e with
  | Sql_ast.E_col (Some q, n) -> begin
    match List.assoc_opt (String.lowercase_ascii q) mapping with
    | Some q' -> Sql_ast.E_col (Some q', n)
    | None -> e
  end
  | Sql_ast.E_col (None, _) | Sql_ast.E_lit _ | Sql_ast.E_count_star | Sql_ast.E_param _ -> e
  | Sql_ast.E_cmp (op, a, b) -> Sql_ast.E_cmp (op, r a, r b)
  | Sql_ast.E_arith (op, a, b) -> Sql_ast.E_arith (op, r a, r b)
  | Sql_ast.E_neg a -> Sql_ast.E_neg (r a)
  | Sql_ast.E_and (a, b) -> Sql_ast.E_and (r a, r b)
  | Sql_ast.E_or (a, b) -> Sql_ast.E_or (r a, r b)
  | Sql_ast.E_not a -> Sql_ast.E_not (r a)
  | Sql_ast.E_is_null a -> Sql_ast.E_is_null (r a)
  | Sql_ast.E_is_not_null a -> Sql_ast.E_is_not_null (r a)
  | Sql_ast.E_like (a, p) -> Sql_ast.E_like (r a, r p)
  | Sql_ast.E_in_list (a, items) -> Sql_ast.E_in_list (r a, List.map r items)
  | Sql_ast.E_case (branches, else_) ->
    Sql_ast.E_case (List.map (fun (c, x) -> (r c, r x)) branches, Option.map r else_)
  | Sql_ast.E_fn (n, args) -> Sql_ast.E_fn (n, List.map r args)
  | Sql_ast.E_fn_distinct (n, a) -> Sql_ast.E_fn_distinct (n, r a)
  | Sql_ast.E_exists _ | Sql_ast.E_in_query _ | Sql_ast.E_scalar _ ->
    err "[XNF099] subqueries are not allowed in SUCH THAT restrictions"

(* wrap a node derivation with a restriction predicate *)
let restrict_node_query (nd : Co_schema.node_def) ~var (pred : Sql_ast.expr) =
  let var = Option.value ~default:nd.Co_schema.nd_name var in
  let wrapped =
    Sql_ast.simple_select [ Sql_ast.Sel_star ]
      [ Sql_ast.From_select (nd.Co_schema.nd_query, var) ]
      (Some pred)
  in
  { nd with Co_schema.nd_query = wrapped }

(** [compose reg q] builds the fully composed (un-projected) CO definition
    of query [q], the residual path-based restrictions, and the TAKE
    clause. Structural projection applies to the evaluated instance
    (evaluate-then-project): a restriction may reference a component the
    TAKE clause drops from the output, as in the paper's type-(3)
    XNF-to-NF queries.
    @raise View_error / Co_schema.Schema_error on semantic errors. *)
let compose reg (q : query) : Co_schema.t * restriction list * Xnf_ast.take =
  (* 1. bindings *)
  let def, imported_restrs =
    List.fold_left
      (fun (def, pending) b ->
        match b with
        | B_node { bn_name; bn_query } ->
          ( Co_schema.add_node def
              { Co_schema.nd_name = String.lowercase_ascii bn_name; nd_query = bn_query;
                nd_cols = None },
            pending )
        | B_edge { be_name; be_parent; be_parent_var; be_child; be_child_var; be_attrs;
                   be_using; be_pred } ->
          let parent = String.lowercase_ascii be_parent in
          let child = String.lowercase_ascii be_child in
          let parent_alias =
            String.lowercase_ascii (Option.value ~default:be_parent be_parent_var)
          in
          let child_alias = String.lowercase_ascii (Option.value ~default:be_child be_child_var) in
          if String.equal parent_alias child_alias then
            err "[XNF004] relationship %s: cyclic partners need distinct role names" be_name;
          ( Co_schema.add_edge def
              { Co_schema.ed_name = String.lowercase_ascii be_name; ed_parent = parent;
                ed_child = child; ed_parent_alias = parent_alias; ed_child_alias = child_alias;
                ed_using = Option.map (fun (t, a) -> (t, String.lowercase_ascii a)) be_using;
                ed_attrs = be_attrs; ed_pred = be_pred },
            pending )
        | B_view name -> begin
          match find_opt reg name with
          | Some v -> (Co_schema.merge def v.v_def, pending @ v.v_path_restrs)
          | None -> err "[XNF003] unknown XNF view %s" name
        end)
      (Co_schema.empty, []) q.q_out_of
  in
  (* 2. restrictions: fold the SQL-expressible ones, keep the rest *)
  let fold_restriction (def, pending) r =
    match r with
    | R_node { rn_node; rn_var; rn_pred } -> begin
      let node = String.lowercase_ascii rn_node in
      if Co_schema.node_opt def node = None then err "[XNF013] restriction on unknown component %s" rn_node;
      match sql_of_xexpr rn_pred with
      | Some sql_pred ->
        let def =
          { def with
            Co_schema.co_nodes =
              List.map
                (fun nd ->
                  if String.equal nd.Co_schema.nd_name node then
                    restrict_node_query nd ~var:rn_var sql_pred
                  else nd)
                def.Co_schema.co_nodes }
        in
        (def, pending)
      | None -> (def, pending @ [ r ])
    end
    | R_edge { re_edge; re_parent_var; re_child_var; re_pred } -> begin
      let edge_name = String.lowercase_ascii re_edge in
      match Co_schema.edge_opt def edge_name with
      | None -> err "[XNF013] restriction on unknown relationship %s" re_edge
      | Some ed -> begin
        match sql_of_xexpr re_pred with
        | Some sql_pred ->
          let mapping =
            [ (String.lowercase_ascii re_parent_var, ed.Co_schema.ed_parent_alias);
              (String.lowercase_ascii re_child_var, ed.Co_schema.ed_child_alias) ]
          in
          let renamed = rename_quals mapping sql_pred in
          let def =
            { def with
              Co_schema.co_edges =
                List.map
                  (fun e ->
                    if String.equal e.Co_schema.ed_name edge_name then
                      { e with Co_schema.ed_pred = Sql_ast.E_and (e.Co_schema.ed_pred, renamed) }
                    else e)
                  def.Co_schema.co_edges }
          in
          (def, pending)
        | None -> (def, pending @ [ r ])
      end
    end
  in
  let def, path_restrs = List.fold_left fold_restriction (def, imported_restrs) q.q_where in
  Co_schema.validate def;
  (* the TAKE clause is validated eagerly so errors surface at
     composition time, but applied to the instance by the translator *)
  ignore (Co_schema.project def q.q_take);
  (def, path_restrs, q.q_take)

(** [define reg ~name q] composes [q] and registers it as a view. A view's
    TAKE clause is part of its definition: the view exports only the
    projected components (schema-level projection), so its path
    restrictions must reference surviving components.
    @raise View_error on duplicate name. *)
let define reg ~name (q : query) =
  let key = String.lowercase_ascii name in
  if Hashtbl.mem reg.views key then err "[XNF021] XNF view %s already exists" name;
  let def, path_restrs, take = compose reg q in
  let def = Co_schema.project def take in
  Co_schema.validate def;
  List.iter
    (fun r ->
      match r with
      | R_node { rn_node; _ } ->
        if Co_schema.node_opt def rn_node = None then
          err "[XNF020] view %s: path restriction references projected-away component %s" name rn_node
      | R_edge { re_edge; _ } ->
        if Co_schema.edge_opt def re_edge = None then
          err "[XNF020] view %s: path restriction references projected-away relationship %s" name re_edge)
    path_restrs;
  Hashtbl.replace reg.views key { v_name = name; v_def = def; v_path_restrs = path_restrs };
  reg.version <- reg.version + 1
