(** Prepared CO fetch plans: an XNF query compiled once — composition,
    semantic analysis and access-path selection — and executed many
    times, optionally with [?] parameter values bound per execution.

    Plans are validated, not updated: three version counters recorded at
    compile time (XNF view registry, relational catalog, global index
    epoch) are compared by {!valid} before reuse, so any DDL that could
    change composition, binding or access-path selection lazily
    invalidates dependent plans. Plain DML does not invalidate a plan —
    executions always re-read base data. *)

open Relational

type t

(** [compile db reg q] composes and compiles [q], recording the versions
    it is valid against. Counted as [xnf.plan.compiles]. *)
val compile : Db.t -> View_registry.t -> Xnf_ast.query -> t

(** [valid db reg plan] holds when the registry version, catalog version
    and index epoch still match the plan's compile-time snapshot. *)
val valid : Db.t -> View_registry.t -> t -> bool

(** [execute ?fixpoint ?params db plan] evaluates the plan into a loaded
    cache; [params] bind the [?] slots in lexical order.
    @raise Invalid_argument on a parameter-count mismatch. *)
val execute :
  ?fixpoint:Translate.fixpoint -> ?params:Value.t array -> Db.t -> t -> Cache.t

(** [text plan] is the canonical (re-parsable) query text — the plan-cache
    key for parsed queries. *)
val text : t -> string

(** [query plan] is the parsed query the plan was compiled from (used to
    recompile after invalidation). *)
val query : t -> Xnf_ast.query

(** [def plan] is the composed (pre-TAKE) CO definition. *)
val def : t -> Co_schema.t

(** [compiled plan] is the compiled form — shapes and strategies for
    post-compile analysis ([Check.Plan_advisor]). *)
val compiled : t -> Translate.compiled

(** [take plan] is the query's TAKE clause. *)
val take : t -> Xnf_ast.take

(** [path_restrs plan] is the query's residual path-based restrictions. *)
val path_restrs : t -> Xnf_ast.restriction list

(** [nparams plan] is the number of [?] parameter slots. *)
val nparams : t -> int

(** [hits plan] counts cache hits served by this plan. *)
val hits : t -> int

(** [note_hit plan] records one cache hit. *)
val note_hit : t -> unit

(** The compile-time version snapshot (for the [sys.plans] view). *)

val reg_version : t -> int
val catalog_version : t -> int
val index_epoch : t -> int

(** [strategies plan] is the access path {!Translate.compile_def} selected
    for each relationship of the plan, in definition order. *)
val strategies : t -> (string * Translate.strategy) list

(** [effective_strategies plan] is {!strategies} with adaptive
    mid-fixpoint switches from the plan's most recent execution applied —
    what the next execution will start from. *)
val effective_strategies : t -> (string * Translate.strategy) list

(** [switches plan] lists the adaptive strategy switches recorded on the
    plan, oldest first (at most one per edge, latest execution wins). *)
val switches : t -> Translate.switch_rec list

(** [cost_based plan] is true when access-path selection came from the
    shared cost model (fresh ANALYZE stats on every base table, no
    [?force]). *)
val cost_based : t -> bool

(** [describe plan] is a one-line summary (parameters, hits, version
    snapshot, query text) for the shell's [\plans] listing. *)
val describe : t -> string
