(** The XNF semantic rewrite and cache loader (§4.3 of the paper).

    Translation produces relational work per node and per relationship of
    the composed CO definition, observing reachability:

    - root extents are evaluated set-orientedly from their derivations;
    - reachability runs as a semi-naive delta fixpoint over the schema
      graph (DAGs converge in one topological sweep, recursive schemas
      iterate); the naive re-probing variant is selectable for the E6
      ablation;
    - each relationship probe is access-path selected: FK-equality and
      indexed USING patterns run as index-nested-loop probes, everything
      else as generic QGM plans through the relational engine (rewrite and
      plan optimization included);
    - non-root extents are lazy: only reached tuples materialize;
    - connection extents are computed per relationship after reachability;
    - path-based restrictions are evaluated on the instance, then
      reachability is re-established;
    - structural projection is evaluate-then-project. *)

open Relational

exception Translate_error of string

type fixpoint = Semi_naive | Naive

(** Statistics of translation activity since the last {!reset_stats}. *)
type stats = {
  mutable queries_issued : int;  (** relational queries / batch probes run *)
  mutable fixpoint_rounds : int;
  mutable tuples_probed : int;  (** total frontier sizes fed to edge probes *)
  mutable indexed_probes : int;  (** edges served by index-nested-loop probes *)
  mutable generic_probes : int;  (** edges served by generic join plans *)
}

val stats : stats
val reset_stats : unit -> unit

(** [fetch ?fixpoint db reg q] evaluates an XNF query: composes the CO
    definition, translates, enforces reachability, evaluates path-based
    restrictions, applies the TAKE projection and returns the loaded
    cache. *)
val fetch : ?fixpoint:fixpoint -> Db.t -> View_registry.t -> Xnf_ast.query -> Cache.t

(** A compiled fetch plan for a composed CO definition: node shape
    analysis, output schemas, updatability analysis and per-edge
    access-path selection, all resolved once. Immutable; one plan serves
    any number of executions (including concurrent parameter bindings). *)
type compiled

(** [compile_def ?take db def] runs the input-independent "translate"
    phase: no base data is accessed. Access-path selection consults the
    catalog and indexes as of now — recompile when schema or indexes
    change. Passing the query's [take] (default [TAKE *]) also precomputes
    the final post-projection updatability analysis for
    {!finalize_plan}. *)
val compile_def : ?take:Xnf_ast.take -> Db.t -> Co_schema.t -> compiled

(** [execute_def ?fixpoint ?params db cp path_restrs] evaluates a compiled
    plan into a cache (before TAKE projection and final updatability
    analysis). [params] are substituted for the [?] parameter slots in
    node derivations, relationship predicates/attributes and SUCH THAT
    restrictions.
    @raise Invalid_argument when a slot index is out of range of [params]. *)
val execute_def :
  ?fixpoint:fixpoint ->
  ?params:Value.t array ->
  Db.t ->
  compiled ->
  Xnf_ast.restriction list ->
  Cache.t

(** [fetch_def ~fixpoint db def path_restrs] compiles and immediately
    executes an already composed CO definition (before TAKE projection and
    final updatability analysis) — used by {!fetch} and by the
    baselines. *)
val fetch_def : fixpoint:fixpoint -> Db.t -> Co_schema.t -> Xnf_ast.restriction list -> Cache.t

(** [finalize db cache] applies column projection and the final
    relationship-updatability / locked-column analysis. *)
val finalize : Db.t -> Cache.t -> Cache.t

(** [finalize_plan db cp cache] is {!finalize} with the per-edge analysis
    read from the compiled plan (precomputed by [compile_def ~take])
    instead of re-derived per fetch. *)
val finalize_plan : Db.t -> compiled -> Cache.t -> Cache.t

(** [apply_take cache take] drops components not named by [take]
    (evaluate-then-project). *)
val apply_take : Cache.t -> Xnf_ast.take -> Cache.t
