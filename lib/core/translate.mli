(** The XNF semantic rewrite and cache loader (§4.3 of the paper).

    Translation produces relational work per node and per relationship of
    the composed CO definition, observing reachability:

    - root extents are evaluated set-orientedly from their derivations;
    - reachability runs as a semi-naive delta fixpoint over the schema
      graph (DAGs converge in one topological sweep, recursive schemas
      iterate); the naive re-probing variant is selectable for the E6
      ablation;
    - each relationship probe is access-path selected: FK-equality and
      indexed USING patterns run as index-nested-loop probes, everything
      else as generic QGM plans through the relational engine (rewrite and
      plan optimization included);
    - non-root extents are lazy: only reached tuples materialize;
    - connection extents are computed per relationship after reachability;
    - path-based restrictions are evaluated on the instance, then
      reachability is re-established;
    - structural projection is evaluate-then-project. *)

open Relational

exception Translate_error of string

type fixpoint = Semi_naive | Naive

(** Edge access paths, in static selection-priority order:
    index-nested-loop probe, batch hash probe, generic QGM join. The
    definition lives in [Relational.Edge_cost] — the shared cost model
    the planner and the static plan advisor both consult. *)
type strategy = Edge_cost.strategy = S_indexed | S_hash | S_generic

(** [strategy_name s] is the display name used by [EXPLAIN ANALYZE] and
    [\plans]: ["indexed"], ["hash-batch"] or ["generic"]. *)
val strategy_name : strategy -> string

(** Statistics of translation activity since the last {!reset_stats}. *)
type stats = {
  mutable queries_issued : int;  (** relational queries / batch probes run *)
  mutable fixpoint_rounds : int;
  mutable tuples_probed : int;  (** total frontier sizes fed to edge probes *)
  mutable indexed_probes : int;  (** edges served by index-nested-loop probes *)
  mutable generic_probes : int;  (** edges served by generic join plans *)
  mutable hash_edges : int;  (** edges served by batch hash probes *)
  mutable hash_builds : int;  (** hash tables built over child/link extents *)
  mutable hash_build_reuses : int;  (** builds skipped: cached table still version-valid *)
  mutable hash_probes : int;  (** batch hash probe passes run *)
  mutable cost_picks : int;  (** edges whose strategy came from the cost model *)
  mutable strategy_switches : int;  (** adaptive mid-fixpoint strategy switches *)
}

val stats : stats
val reset_stats : unit -> unit

(** {2 Adaptive mid-fixpoint fallback knobs}

    Between semi-naive rounds the executor compares observed
    frontier/connection/candidate-scan counters per edge against the
    plan's cost estimates and switches the edge's access path for
    subsequent rounds when they diverge beyond [adaptive_factor] (with at
    least [adaptive_min_rows] observed rows, so tiny instances never
    flap). Applies only to cost-picked, unforced plans; at most one
    switch per edge per execution. Process-global, like the optimizer
    toggles. *)

val set_adaptive : bool -> unit
val adaptive_enabled : unit -> bool
val set_adaptive_factor : float -> unit
val adaptive_factor : unit -> float
val set_adaptive_min_rows : int -> unit
val adaptive_min_rows : unit -> int

(** [fetch ?fixpoint db reg q] evaluates an XNF query: composes the CO
    definition, translates, enforces reachability, evaluates path-based
    restrictions, applies the TAKE projection and returns the loaded
    cache. *)
val fetch : ?fixpoint:fixpoint -> Db.t -> View_registry.t -> Xnf_ast.query -> Cache.t

(** A compiled fetch plan for a composed CO definition: node shape
    analysis, output schemas, updatability analysis and per-edge
    access-path selection, all resolved once. One plan serves any number
    of executions (including concurrent parameter bindings); the only
    mutable state is the adaptive switch record, which executions append
    so later plan-cache hits start from the learned strategy. *)
type compiled

(** [compile_def ?take ?force db def] runs the input-independent
    "translate" phase: no base data is accessed. Access-path selection
    consults the catalog and indexes as of now — recompile when schema or
    indexes change. When every base table the plan reads has a fresh
    [ANALYZE] snapshot, each edge's strategy is picked per plan by the
    shared cost model ([Relational.Edge_cost]); with missing or stale
    stats selection falls back to the static priority rules
    (indexed > hash > generic). Passing the query's [take] (default
    [TAKE *]) also precomputes the final post-projection updatability
    analysis for {!finalize_plan}. [force] pins selection to one strategy
    (differential testing, per-strategy benches) and always wins over the
    cost model; edges the forced strategy cannot serve fall back to the
    generic path. *)
val compile_def : ?take:Xnf_ast.take -> ?force:strategy -> Db.t -> Co_schema.t -> compiled

(** [edge_strategies cp] is the access path selected per relationship at
    compile time, in definition order. *)
val edge_strategies : compiled -> (string * strategy) list

(** One adaptive mid-fixpoint strategy switch recorded on a plan. *)
type switch_rec = {
  sw_edge : string;
  sw_from : strategy;
  sw_to : strategy;
  sw_round : int;  (** fixpoint round (1-based, per execution) after which it applied *)
}

(** [effective_strategies cp] is {!edge_strategies} with the adaptive
    switches recorded by the most recent execution applied — the access
    paths the next execution of this plan will start from. *)
val effective_strategies : compiled -> (string * strategy) list

(** [switches cp] lists the adaptive switches recorded on the plan,
    oldest first; at most one per edge (the latest execution wins). *)
val switches : compiled -> switch_rec list

(** [cost_based cp] is true when per-edge selection came from the shared
    cost model (fresh stats on every base table, no [?force]). *)
val cost_based : compiled -> bool

(** The structural join shape of one relationship as compiled: which base
    table the child resolves to, the equality join columns on either
    side, USING link bindings, and whether an index chain serves the
    probe. No closures, no data — extracted for post-compile analysis
    (the static plan advisor, [Check.Plan_advisor]). *)
type edge_shape = Edge_cost.edge_shape = {
  es_name : string;
  es_parent : string;  (** parent node name *)
  es_child : string;  (** child node name *)
  es_strategy : strategy;  (** access path selected for this plan *)
  es_child_table : string option;  (** child's base table when the child is simple *)
  es_parent_cols : string list;  (** parent-side equality join columns (node output names) *)
  es_child_cols : string list;  (** child-side equality join columns (base-table names) *)
  es_using : (string * string list) option;
      (** link table and the link-side columns the parent binds, for USING edges *)
  es_indexed : bool;  (** an index chain serves the probe as compiled *)
  es_residual : bool;  (** non-key conjuncts remain after key extraction *)
}

(** The derivation shape of one node: its base table and combined
    predicate when simple, and the composed derivation query. *)
type node_shape = Edge_cost.node_shape = {
  ns_name : string;
  ns_table : string option;
  ns_pred : Expr.t option;
  ns_query : Sql_ast.select;
}

(** [edge_shapes cp] is the structural join shape per relationship, in
    definition order. *)
val edge_shapes : compiled -> edge_shape list

(** [node_shapes cp] is the derivation shape per node, in definition
    order. *)
val node_shapes : compiled -> node_shape list

(** [forced cp] is the [?force] pin the plan was compiled under, if any. *)
val forced : compiled -> strategy option

(** [compiled_def cp] is the composed definition the plan was compiled
    from. *)
val compiled_def : compiled -> Co_schema.t

(** [base_tables cp] is the staleness-tracked base-table set (lowercased,
    sorted). *)
val base_tables : compiled -> string list

(** [execute_def ?fixpoint ?params db cp path_restrs] evaluates a compiled
    plan into a cache (before TAKE projection and final updatability
    analysis). [params] are substituted for the [?] parameter slots in
    node derivations, relationship predicates/attributes and SUCH THAT
    restrictions.
    @raise Invalid_argument when a slot index is out of range of [params]. *)
val execute_def :
  ?fixpoint:fixpoint ->
  ?params:Value.t array ->
  Db.t ->
  compiled ->
  Xnf_ast.restriction list ->
  Cache.t

(** [fetch_def ?force ~fixpoint db def path_restrs] compiles and
    immediately executes an already composed CO definition (before TAKE
    projection and final updatability analysis) — used by {!fetch}, the
    baselines and the strategy-differential fuzz oracle. *)
val fetch_def :
  ?force:strategy -> fixpoint:fixpoint -> Db.t -> Co_schema.t -> Xnf_ast.restriction list -> Cache.t

(** [finalize db cache] applies column projection and the final
    relationship-updatability / locked-column analysis. *)
val finalize : Db.t -> Cache.t -> Cache.t

(** [finalize_plan db cp cache] is {!finalize} with the per-edge analysis
    read from the compiled plan (precomputed by [compile_def ~take])
    instead of re-derived per fetch. *)
val finalize_plan : Db.t -> compiled -> Cache.t -> Cache.t

(** [apply_take cache take] drops components not named by [take]
    (evaluate-then-project). *)
val apply_take : Cache.t -> Xnf_ast.take -> Cache.t
