(* The XNF cache: an in-memory composite-object instance (§4.2).

   A loaded CO holds, per node, a vector of tuples (with base-table
   provenance when the node is updatable) and, per edge, the connection
   set with adjacency in both directions — the "virtual memory pointers"
   of the paper, realized as integer positions for safety; dereference
   cost is the same O(1).

   The execution core fills a fresh cache on every fetch, so the fill
   path is kept allocation-light: connections live in struct-of-arrays
   buffers (two int arrays, a liveness byte per connection, attribute
   rows only when the edge carries attributes), the rowid index is an
   open-addressing int map, and adjacency is a CSR built lazily on first
   navigation (plus overflow lists for connections appended afterwards
   by manipulation operations). Boxed [conn] records exist only as
   on-demand views for the enumeration APIs.

   Tuples and connections are tombstoned ([live = false]) rather than
   removed, so cursor positions and adjacency stay stable under udi
   operations; [save]-time propagation and reachability maintenance live
   in {!Udi}. *)

open Relational

type tuple = {
  t_pos : int;  (** position in the node vector (stable identity) *)
  mutable t_row : Row.enc;  (** dictionary-encoded; decode via {!row}/{!col} *)
  mutable t_rowid : int;  (** provenance: base-table rowid; [-1] = none *)
  mutable t_live : bool;
  mutable t_dirty : bool;  (** modified in cache, not yet propagated *)
}

type node_inst = {
  ni_name : string;
  mutable ni_schema : Schema.t;
  ni_tuples : tuple Vec.t;
  mutable ni_upd : Semantic.node_updatability option;
  ni_by_rowid : Intmap.t;  (** base rowid -> position *)
  mutable ni_locked_cols : int list;
      (** columns used in relationship predicates: updatable only through
          connect/disconnect (§3.7) *)
}

(** Connection storage: struct-of-arrays, indexed by connection id.
    [cs_attrs] has length 0 when the edge carries no attributes. *)
type conns = {
  mutable cs_parent : int array;  (** position in the parent node *)
  mutable cs_child : int array;  (** position in the child node *)
  mutable cs_attrs : Row.enc array;
  mutable cs_live : Bytes.t;  (** ['\001'] = live *)
  mutable cs_len : int;
}

(** A materialized view of one connection (enumeration APIs only — the
    hot paths read the struct-of-arrays directly). *)
type conn = {
  cn_idx : int;  (** connection id within its edge *)
  cn_parent : int;
  cn_child : int;
  cn_attrs : Row.enc;  (** encoded; [[||]] when the edge has none *)
}

(** Adjacency: CSR over the connections present at build time, overflow
    lists for connections appended afterwards. *)
type adj = {
  aj_child_off : int array;  (** parent pos -> offset into [aj_child_idx] *)
  aj_child_idx : int array;
  aj_parent_off : int array;  (** child pos -> offset into [aj_parent_idx] *)
  aj_parent_idx : int array;
  aj_child_over : (int, int list) Hashtbl.t;
  aj_parent_over : (int, int list) Hashtbl.t;
}

type edge_inst = {
  ei_name : string;
  ei_parent : string;
  ei_child : string;
  ei_parent_node : node_inst;  (** direct reference: cursor steps are O(1) *)
  ei_child_node : node_inst;
  ei_attr_schema : Schema.t;
  ei_conns : conns;
  mutable ei_adj : adj option;  (** built lazily on first navigation *)
  mutable ei_upd : Semantic.edge_updatability;
}

type t = {
  c_def : Co_schema.t;
  c_nodes : (string * node_inst) list;  (** in definition order *)
  c_edges : (string * edge_inst) list;
  mutable c_base_versions : (string * int) list;  (** staleness detection *)
}

exception Cache_error of string

let err fmt = Fmt.kstr (fun s -> raise (Cache_error s)) fmt

(* navigation / lifetime counters in the process-global metrics registry:
   a hit is a traversal or key lookup that found live partners, a miss one
   that found none; evictions are tuples tombstoned by reachability *)
let m_nav_hits = Obs.Metrics.counter "xnf.cache.nav_hits"
let m_nav_misses = Obs.Metrics.counter "xnf.cache.nav_misses"
let m_key_hits = Obs.Metrics.counter "xnf.cache.key_hits"
let m_key_misses = Obs.Metrics.counter "xnf.cache.key_misses"
let m_evictions = Obs.Metrics.counter "xnf.cache.evictions"
let m_stale_checks = Obs.Metrics.counter "xnf.cache.stale_checks"

let note_nav = function
  | [] -> Obs.Metrics.incr m_nav_misses; []
  | hits -> Obs.Metrics.incr m_nav_hits; hits

let dummy_tuple = { t_pos = -1; t_row = [||]; t_rowid = -1; t_live = false; t_dirty = false }

(** [make_node name schema] is an empty node instance ([size_hint] presizes
    the rowid index). *)
let make_node ?(size_hint = 16) ~schema ~upd name =
  { ni_name = name; ni_schema = schema;
    ni_tuples = Vec.create ~capacity:size_hint ~dummy:dummy_tuple (); ni_upd = upd;
    ni_by_rowid = Intmap.create ~size:size_hint; ni_locked_cols = [] }

(** Decode boundary helpers: the cache stores dictionary-encoded rows;
    everything user-facing (TAKE, cursors, sys.* rendering, udi writes to
    base tables) decodes through these. *)

let row (t : tuple) : Row.t = Row.decode t.t_row

let col (t : tuple) i : Value.t = Dict.decode t.t_row.(i)

let conn_attrs (c : conn) : Row.t = Row.decode c.cn_attrs

(* ---- connection storage ---- *)

(** [make_conns ~attrs ~size_hint ()] is an empty connection buffer;
    [attrs] declares whether the edge carries attribute rows. *)
let make_conns ?(size_hint = 8) ~attrs () =
  let cap = max 8 size_hint in
  { cs_parent = Array.make cap 0; cs_child = Array.make cap 0;
    cs_attrs = (if attrs then Array.make cap [||] else [||]);
    cs_live = Bytes.make cap '\001'; cs_len = 0 }

let conns_grow cs n =
  let old = Array.length cs.cs_parent in
  if n > old then begin
    let cap = max n (2 * old) in
    let grow_int a =
      let a' = Array.make cap 0 in
      Array.blit a 0 a' 0 cs.cs_len;
      a'
    in
    cs.cs_parent <- grow_int cs.cs_parent;
    cs.cs_child <- grow_int cs.cs_child;
    if Array.length cs.cs_attrs > 0 then begin
      let a' = Array.make cap [||] in
      Array.blit cs.cs_attrs 0 a' 0 cs.cs_len;
      cs.cs_attrs <- a'
    end;
    let b = Bytes.make cap '\001' in
    Bytes.blit cs.cs_live 0 b 0 cs.cs_len;
    cs.cs_live <- b
  end

(** [push_conn cs ~parent ~child ~attrs] appends a live connection to a
    buffer; returns its id. Attribute rows are dropped when the buffer
    was created without attribute storage. *)
let push_conn cs ~parent ~child ~attrs =
  let i = cs.cs_len in
  conns_grow cs (i + 1);
  cs.cs_parent.(i) <- parent;
  cs.cs_child.(i) <- child;
  if Array.length cs.cs_attrs > 0 then cs.cs_attrs.(i) <- attrs;
  Bytes.unsafe_set cs.cs_live i '\001';
  cs.cs_len <- i + 1;
  i

(** Per-connection accessors (hot paths: no boxing). *)

let conn_count ei = ei.ei_conns.cs_len

let conn_parent_at ei i = ei.ei_conns.cs_parent.(i)
let conn_child_at ei i = ei.ei_conns.cs_child.(i)
let conn_live_at ei i = Bytes.get ei.ei_conns.cs_live i = '\001'

let conn_attrs_at ei i =
  let cs = ei.ei_conns in
  if Array.length cs.cs_attrs = 0 then [||] else cs.cs_attrs.(i)

let set_conn_live ei i b =
  Bytes.set ei.ei_conns.cs_live i (if b then '\001' else '\000')

(** [conn_at ei i] is a materialized view of connection [i]. *)
let conn_at ei i =
  { cn_idx = i; cn_parent = conn_parent_at ei i; cn_child = conn_child_at ei i;
    cn_attrs = conn_attrs_at ei i }

(** [node cache name] is the node instance named [name].
    @raise Cache_error when absent. *)
let node cache name =
  let name = String.lowercase_ascii name in
  match List.assoc_opt name cache.c_nodes with
  | Some n -> n
  | None -> err "no component table %s in this composite object" name

(** [edge cache name] is the edge instance named [name].
    @raise Cache_error when absent. *)
let edge cache name =
  let name = String.lowercase_ascii name in
  match List.assoc_opt name cache.c_edges with
  | Some e -> e
  | None -> err "no relationship %s in this composite object" name

(** [node_opt cache name] / [edge_opt cache name]: option-returning
    lookups. *)
let node_opt cache name = List.assoc_opt (String.lowercase_ascii name) cache.c_nodes

let edge_opt cache name = List.assoc_opt (String.lowercase_ascii name) cache.c_edges

(** [live_tuples ni] lists the node's live tuples in position order. *)
let live_tuples ni =
  List.rev (Vec.fold (fun acc t -> if t.t_live then t :: acc else acc) [] ni.ni_tuples)

(** [live_count ni] counts live tuples. *)
let live_count ni = Vec.fold (fun acc t -> if t.t_live then acc + 1 else acc) 0 ni.ni_tuples

(** [tuple ni pos] is the tuple at [pos] (live or not).
    @raise Cache_error on bad position. *)
let tuple ni pos =
  if pos < 0 || pos >= Vec.length ni.ni_tuples then err "bad tuple position %d in %s" pos ni.ni_name;
  Vec.get ni.ni_tuples pos

(** [conns_live ei] lists views of the live connections in id order. *)
let conns_live ei =
  let acc = ref [] in
  for i = ei.ei_conns.cs_len - 1 downto 0 do
    if conn_live_at ei i then acc := conn_at ei i :: !acc
  done;
  !acc

(** [live_conn_count ei] counts live connections. *)
let live_conn_count ei =
  let n = ref 0 in
  for i = 0 to ei.ei_conns.cs_len - 1 do
    if conn_live_at ei i then incr n
  done;
  !n

(* ---- adjacency ---- *)

(* CSR over the connections present now: one counting pass sizes the
   per-position slices, a second fills them in ascending connection id
   order. Offsets are indexed by tuple position at build time; positions
   created later only ever reach new connections, which land in the
   overflow lists. *)
let build_adj ei =
  let cs = ei.ei_conns in
  let np = Vec.length ei.ei_parent_node.ni_tuples
  and nc = Vec.length ei.ei_child_node.ni_tuples in
  let coff = Array.make (np + 1) 0 and poff = Array.make (nc + 1) 0 in
  for i = 0 to cs.cs_len - 1 do
    coff.(cs.cs_parent.(i)) <- coff.(cs.cs_parent.(i)) + 1;
    poff.(cs.cs_child.(i)) <- poff.(cs.cs_child.(i)) + 1
  done;
  let prefix off n =
    let s = ref 0 in
    for p = 0 to n do
      let c = off.(p) in
      off.(p) <- !s;
      s := !s + c
    done
  in
  prefix coff np;
  prefix poff nc;
  let cidx = Array.make cs.cs_len 0 and pidx = Array.make cs.cs_len 0 in
  let ccur = Array.copy coff and pcur = Array.copy poff in
  for i = 0 to cs.cs_len - 1 do
    let p = cs.cs_parent.(i) and c = cs.cs_child.(i) in
    cidx.(ccur.(p)) <- i;
    ccur.(p) <- ccur.(p) + 1;
    pidx.(pcur.(c)) <- i;
    pcur.(c) <- pcur.(c) + 1
  done;
  let a =
    { aj_child_off = coff; aj_child_idx = cidx; aj_parent_off = poff; aj_parent_idx = pidx;
      aj_child_over = Hashtbl.create 8; aj_parent_over = Hashtbl.create 8 }
  in
  ei.ei_adj <- Some a;
  a

let ensure_adj ei = match ei.ei_adj with Some a -> a | None -> build_adj ei

(** [iter_conns_of_parent ei pos f] applies [f] to the id of every
    connection (live or not) whose parent position is [pos]. *)
let iter_conns_of_parent ei pos f =
  let a = ensure_adj ei in
  if pos < Array.length a.aj_child_off - 1 then
    for k = a.aj_child_off.(pos) to a.aj_child_off.(pos + 1) - 1 do
      f a.aj_child_idx.(k)
    done;
  match Hashtbl.find_opt a.aj_child_over pos with
  | Some l -> List.iter f (List.rev l)
  | None -> ()

(** [iter_conns_of_child ei pos f]: the reverse direction. *)
let iter_conns_of_child ei pos f =
  let a = ensure_adj ei in
  if pos < Array.length a.aj_parent_off - 1 then
    for k = a.aj_parent_off.(pos) to a.aj_parent_off.(pos + 1) - 1 do
      f a.aj_parent_idx.(k)
    done;
  match Hashtbl.find_opt a.aj_parent_over pos with
  | Some l -> List.iter f (List.rev l)
  | None -> ()

(** [children cache ei parent_pos] is the positions of live child tuples
    connected to the parent tuple at [parent_pos] (traversal
    parent->child). The [cache] argument is unused but kept for symmetry
    with call sites that traverse by name. *)
let children _cache ei parent_pos =
  let acc = ref [] in
  iter_conns_of_parent ei parent_pos (fun ci ->
      if conn_live_at ei ci then begin
        let c = conn_child_at ei ci in
        if (Vec.get ei.ei_child_node.ni_tuples c).t_live then acc := c :: !acc
      end);
  note_nav (List.rev !acc)

(** [parents cache ei child_pos] is the positions of live parent tuples
    connected to the child tuple at [child_pos] (reverse traversal, which
    XNF relationships permit). *)
let parents _cache ei child_pos =
  let acc = ref [] in
  iter_conns_of_child ei child_pos (fun ci ->
      if conn_live_at ei ci then begin
        let p = conn_parent_at ei ci in
        if (Vec.get ei.ei_parent_node.ni_tuples p).t_live then acc := p :: !acc
      end);
  note_nav (List.rev !acc)

(** [related cache ei pos ~from] traverses edge [ei] from the node [from]:
    forward when [from] is the parent side, backward when the child side.
    @raise Cache_error when [from] is neither partner. *)
let related cache ei ~from pos =
  let from = String.lowercase_ascii from in
  if String.equal from ei.ei_parent then (ei.ei_child, children cache ei pos)
  else if String.equal from ei.ei_child then (ei.ei_parent, parents cache ei pos)
  else err "relationship %s does not involve %s" ei.ei_name from

(** [add_conn ei ~parent ~child ~attrs] appends a live connection and
    updates adjacency; returns its id. *)
let add_conn ei ~parent ~child ~attrs =
  let idx = push_conn ei.ei_conns ~parent ~child ~attrs in
  (match ei.ei_adj with
  | None -> ()  (* adjacency not built yet: the next navigation covers it *)
  | Some a ->
    Hashtbl.replace a.aj_child_over parent
      (idx :: Option.value ~default:[] (Hashtbl.find_opt a.aj_child_over parent));
    Hashtbl.replace a.aj_parent_over child
      (idx :: Option.value ~default:[] (Hashtbl.find_opt a.aj_parent_over child)));
  idx

(** [add_tuple ni ~rowid row] appends a live tuple ([rowid] [-1] = no
    provenance); returns its position. *)
let add_tuple ni ~rowid row =
  let pos = Vec.length ni.ni_tuples in
  Vec.push ni.ni_tuples { t_pos = pos; t_row = row; t_rowid = rowid; t_live = true; t_dirty = false };
  if rowid >= 0 then Intmap.set ni.ni_by_rowid rowid pos;
  pos

(** [pos_of_rowid ni rowid] is the position caching base row [rowid], or
    [-1]. Allocation-free. *)
let pos_of_rowid ni rowid = Intmap.get ni.ni_by_rowid rowid

(** [recompute_reachability cache] re-applies the reachability constraint
    inside the cache: tuples of root nodes seed a traversal along live
    connections in parent->child direction; unreached tuples and the
    connections touching dead tuples are tombstoned. Called after
    restriction evaluation and after udi operations that can strand
    tuples. *)
let recompute_reachability cache =
  let reached : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let tbl name =
    match Hashtbl.find_opt reached name with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 64 in
      Hashtbl.replace reached name h;
      h
  in
  let queue = Queue.create () in
  let mark name pos =
    let h = tbl name in
    if not (Hashtbl.mem h pos) then begin
      Hashtbl.replace h pos ();
      Queue.push (name, pos) queue
    end
  in
  let root_names =
    match Co_schema.roots cache.c_def with
    | [] ->
      (* a projected instance may have no root component (evaluate-then-
         project); its tuples stand on their own *)
      List.map fst cache.c_nodes
    | roots -> List.map (fun nd -> nd.Co_schema.nd_name) roots
  in
  List.iter
    (fun name ->
      let ni = node cache name in
      Vec.iter (fun t -> if t.t_live then mark name t.t_pos) ni.ni_tuples)
    root_names;
  while not (Queue.is_empty queue) do
    let name, pos = Queue.pop queue in
    List.iter
      (fun (_, ei) ->
        if String.equal ei.ei_parent name then
          List.iter (fun child -> mark ei.ei_child child) (children cache ei pos))
      cache.c_edges
  done;
  (* tombstone unreached tuples *)
  List.iter
    (fun (name, ni) ->
      let h = tbl name in
      Vec.iter
        (fun t ->
          if t.t_live && not (Hashtbl.mem h t.t_pos) then begin
            t.t_live <- false;
            Obs.Metrics.incr m_evictions
          end)
        ni.ni_tuples)
    cache.c_nodes;
  (* tombstone connections touching dead tuples *)
  List.iter
    (fun (_, ei) ->
      let pn = node cache ei.ei_parent and cn = node cache ei.ei_child in
      for i = 0 to ei.ei_conns.cs_len - 1 do
        if
          conn_live_at ei i
          && ((not (tuple pn (conn_parent_at ei i)).t_live)
             || not (tuple cn (conn_child_at ei i)).t_live)
        then set_conn_live ei i false
      done)
    cache.c_edges

(** [stale cache db] holds when any base table changed since the cache was
    loaded (other than through this cache's own propagation — callers that
    propagate refresh the recorded versions). *)
let stale cache db =
  Obs.Metrics.incr m_stale_checks;
  List.exists
    (fun (name, v) ->
      match Catalog.table_opt (Db.catalog db) name with
      | Some t -> Table.version t <> v
      | None -> true)
    cache.c_base_versions

(** A snapshot lookup structure over one cached node: normalized key id ->
    positions of live tuples (int-keyed, so probes never box). Rebuild
    after udi operations that change the keyed column. *)
type key_index = { ki_node : string; ki_col : int; ki_map : (int, int list) Hashtbl.t }

(** [build_key_index cache ~node ~col] indexes the live tuples of [node] by
    the value of column [col] — O(1) point access into the cache, as
    OO1-style applications expect.
    @raise Cache_error on unknown node or column. *)
let build_key_index cache ~node:name ~col =
  let ni = node cache name in
  let ci =
    match Schema.find_opt ni.ni_schema col with
    | Some i -> i
    | None -> err "no column %s in component %s" col name
  in
  let map = Hashtbl.create (max 16 (live_count ni)) in
  Vec.iter
    (fun t ->
      if t.t_live then begin
        let v = Dict.key_cell t.t_row.(ci) in
        Hashtbl.replace map v (t.t_pos :: Option.value ~default:[] (Hashtbl.find_opt map v))
      end)
    ni.ni_tuples;
  { ki_node = ni.ni_name; ki_col = ci; ki_map = map }

(** [lookup_key cache ki v] is the positions of live tuples whose keyed
    column equals [v] (stale entries for tombstoned tuples are filtered). *)
let lookup_key cache ki v =
  let ni = node cache ki.ki_node in
  let hits =
    List.filter
      (fun pos -> (tuple ni pos).t_live)
      (Option.value ~default:[]
         (Hashtbl.find_opt ki.ki_map (Dict.key_cell (Dict.encode v))))
  in
  Obs.Metrics.incr (match hits with [] -> m_key_misses | _ -> m_key_hits);
  hits

(** [lookup_key_one cache ki v] is the unique position for [v], if any. *)
let lookup_key_one cache ki v =
  match lookup_key cache ki v with pos :: _ -> Some pos | [] -> None

(** [total_tuples cache] counts live tuples across all nodes. *)
let total_tuples cache = List.fold_left (fun acc (_, ni) -> acc + live_count ni) 0 cache.c_nodes

(** [total_conns cache] counts live connections across all edges. *)
let total_conns cache =
  List.fold_left (fun acc (_, ei) -> acc + live_conn_count ei) 0 cache.c_edges

(** [pp] prints a summary: per node the live tuple count, per edge the live
    connection count. *)
let pp ppf cache =
  Fmt.pf ppf "CO instance:@.";
  List.iter
    (fun (name, ni) -> Fmt.pf ppf "  %s: %d tuples@." name (live_count ni))
    cache.c_nodes;
  List.iter
    (fun (name, ei) ->
      Fmt.pf ppf "  %s (%s -> %s): %d connections@." name ei.ei_parent ei.ei_child
        (live_conn_count ei))
    cache.c_edges
