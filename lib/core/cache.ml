(* The XNF cache: an in-memory composite-object instance (§4.2).

   A loaded CO holds, per node, a vector of tuples (with base-table
   provenance when the node is updatable) and, per edge, a vector of
   connections with adjacency lists in both directions — the "virtual
   memory pointers" of the paper, realized as integer positions for
   safety; dereference cost is the same O(1).

   Tuples and connections are tombstoned ([live = false]) rather than
   removed, so cursor positions and adjacency stay stable under udi
   operations; [save]-time propagation and reachability maintenance live
   in {!Udi}. *)

open Relational

type tuple = {
  t_pos : int;  (** position in the node vector (stable identity) *)
  mutable t_row : Row.t;
  mutable t_rowid : int option;  (** provenance: base-table rowid, when updatable *)
  mutable t_live : bool;
  mutable t_dirty : bool;  (** modified in cache, not yet propagated *)
}

type node_inst = {
  ni_name : string;
  mutable ni_schema : Schema.t;
  ni_tuples : tuple Vec.t;
  mutable ni_upd : Semantic.node_updatability option;
  ni_by_rowid : (int, int) Hashtbl.t;  (** base rowid -> position *)
  mutable ni_locked_cols : int list;
      (** columns used in relationship predicates: updatable only through
          connect/disconnect (§3.7) *)
}

type conn = {
  cn_parent : int;  (** position in the parent node *)
  cn_child : int;  (** position in the child node *)
  cn_attrs : Row.t;  (** relationship attributes *)
  mutable cn_live : bool;
}

type edge_inst = {
  ei_name : string;
  ei_parent : string;
  ei_child : string;
  ei_parent_node : node_inst;  (** direct reference: cursor steps are O(1) *)
  ei_child_node : node_inst;
  ei_attr_schema : Schema.t;
  ei_conns : conn Vec.t;
  ei_children_of : (int, int list) Hashtbl.t;  (** parent pos -> conn indexes *)
  ei_parents_of : (int, int list) Hashtbl.t;  (** child pos -> conn indexes *)
  mutable ei_upd : Semantic.edge_updatability;
}

type t = {
  c_def : Co_schema.t;
  c_nodes : (string * node_inst) list;  (** in definition order *)
  c_edges : (string * edge_inst) list;
  mutable c_base_versions : (string * int) list;  (** staleness detection *)
}

exception Cache_error of string

let err fmt = Fmt.kstr (fun s -> raise (Cache_error s)) fmt

(* navigation / lifetime counters in the process-global metrics registry:
   a hit is a traversal or key lookup that found live partners, a miss one
   that found none; evictions are tuples tombstoned by reachability *)
let m_nav_hits = Obs.Metrics.counter "xnf.cache.nav_hits"
let m_nav_misses = Obs.Metrics.counter "xnf.cache.nav_misses"
let m_key_hits = Obs.Metrics.counter "xnf.cache.key_hits"
let m_key_misses = Obs.Metrics.counter "xnf.cache.key_misses"
let m_evictions = Obs.Metrics.counter "xnf.cache.evictions"
let m_stale_checks = Obs.Metrics.counter "xnf.cache.stale_checks"

let note_nav = function
  | [] -> Obs.Metrics.incr m_nav_misses; []
  | hits -> Obs.Metrics.incr m_nav_hits; hits

let dummy_tuple = { t_pos = -1; t_row = [||]; t_rowid = None; t_live = false; t_dirty = false }
let dummy_conn = { cn_parent = -1; cn_child = -1; cn_attrs = [||]; cn_live = false }

(** [node cache name] is the node instance named [name].
    @raise Cache_error when absent. *)
let node cache name =
  let name = String.lowercase_ascii name in
  match List.assoc_opt name cache.c_nodes with
  | Some n -> n
  | None -> err "no component table %s in this composite object" name

(** [edge cache name] is the edge instance named [name].
    @raise Cache_error when absent. *)
let edge cache name =
  let name = String.lowercase_ascii name in
  match List.assoc_opt name cache.c_edges with
  | Some e -> e
  | None -> err "no relationship %s in this composite object" name

(** [node_opt cache name] / [edge_opt cache name]: option-returning
    lookups. *)
let node_opt cache name = List.assoc_opt (String.lowercase_ascii name) cache.c_nodes

let edge_opt cache name = List.assoc_opt (String.lowercase_ascii name) cache.c_edges

(** [live_tuples ni] lists the node's live tuples in position order. *)
let live_tuples ni =
  List.rev (Vec.fold (fun acc t -> if t.t_live then t :: acc else acc) [] ni.ni_tuples)

(** [live_count ni] counts live tuples. *)
let live_count ni = Vec.fold (fun acc t -> if t.t_live then acc + 1 else acc) 0 ni.ni_tuples

(** [tuple ni pos] is the tuple at [pos] (live or not).
    @raise Cache_error on bad position. *)
let tuple ni pos =
  if pos < 0 || pos >= Vec.length ni.ni_tuples then err "bad tuple position %d in %s" pos ni.ni_name;
  Vec.get ni.ni_tuples pos

(** [conns_live ei] lists live connections. *)
let conns_live ei =
  List.rev (Vec.fold (fun acc c -> if c.cn_live then c :: acc else acc) [] ei.ei_conns)

let adj tbl pos = Option.value ~default:[] (Hashtbl.find_opt tbl pos)

(** [children cache ei parent_pos] is the positions of live child tuples
    connected to the parent tuple at [parent_pos] (traversal
    parent->child). The [cache] argument is unused but kept for symmetry
    with call sites that traverse by name. *)
let children _cache ei parent_pos =
  note_nav
    (List.filter_map
       (fun ci ->
         let c = Vec.get ei.ei_conns ci in
         if c.cn_live && (Vec.get ei.ei_child_node.ni_tuples c.cn_child).t_live then Some c.cn_child
         else None)
       (adj ei.ei_children_of parent_pos))

(** [parents cache ei child_pos] is the positions of live parent tuples
    connected to the child tuple at [child_pos] (reverse traversal, which
    XNF relationships permit). *)
let parents _cache ei child_pos =
  note_nav
    (List.filter_map
       (fun ci ->
         let c = Vec.get ei.ei_conns ci in
         if c.cn_live && (Vec.get ei.ei_parent_node.ni_tuples c.cn_parent).t_live then Some c.cn_parent
         else None)
       (adj ei.ei_parents_of child_pos))

(** [related cache ei pos ~from] traverses edge [ei] from the node [from]:
    forward when [from] is the parent side, backward when the child side.
    @raise Cache_error when [from] is neither partner. *)
let related cache ei ~from pos =
  let from = String.lowercase_ascii from in
  if String.equal from ei.ei_parent then (ei.ei_child, children cache ei pos)
  else if String.equal from ei.ei_child then (ei.ei_parent, parents cache ei pos)
  else err "relationship %s does not involve %s" ei.ei_name from

(** [add_conn ei ~parent ~child ~attrs] appends a live connection and
    updates adjacency; returns its index. *)
let add_conn ei ~parent ~child ~attrs =
  let idx = Vec.length ei.ei_conns in
  Vec.push ei.ei_conns { cn_parent = parent; cn_child = child; cn_attrs = attrs; cn_live = true };
  Hashtbl.replace ei.ei_children_of parent (idx :: adj ei.ei_children_of parent);
  Hashtbl.replace ei.ei_parents_of child (idx :: adj ei.ei_parents_of child);
  idx

(** [add_conns ei conns] bulk-appends [(parent, child, attrs)] live
    connections — the readout path of the fused fixpoint, where whole
    per-edge accumulators land at once. *)
let add_conns ei conns =
  List.iter
    (fun (parent, child, attrs) ->
      let idx = Vec.length ei.ei_conns in
      Vec.push ei.ei_conns { cn_parent = parent; cn_child = child; cn_attrs = attrs; cn_live = true };
      Hashtbl.replace ei.ei_children_of parent (idx :: adj ei.ei_children_of parent);
      Hashtbl.replace ei.ei_parents_of child (idx :: adj ei.ei_parents_of child))
    conns

(** [add_tuple ni ~rowid row] appends a live tuple; returns its position. *)
let add_tuple ni ~rowid row =
  let pos = Vec.length ni.ni_tuples in
  Vec.push ni.ni_tuples { t_pos = pos; t_row = row; t_rowid = rowid; t_live = true; t_dirty = false };
  Option.iter (fun rid -> Hashtbl.replace ni.ni_by_rowid rid pos) rowid;
  pos

(** [recompute_reachability cache] re-applies the reachability constraint
    inside the cache: tuples of root nodes seed a traversal along live
    connections in parent->child direction; unreached tuples and the
    connections touching dead tuples are tombstoned. Called after
    restriction evaluation and after udi operations that can strand
    tuples. *)
let recompute_reachability cache =
  let reached : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let tbl name =
    match Hashtbl.find_opt reached name with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 64 in
      Hashtbl.replace reached name h;
      h
  in
  let queue = Queue.create () in
  let mark name pos =
    let h = tbl name in
    if not (Hashtbl.mem h pos) then begin
      Hashtbl.replace h pos ();
      Queue.push (name, pos) queue
    end
  in
  let root_names =
    match Co_schema.roots cache.c_def with
    | [] ->
      (* a projected instance may have no root component (evaluate-then-
         project); its tuples stand on their own *)
      List.map fst cache.c_nodes
    | roots -> List.map (fun nd -> nd.Co_schema.nd_name) roots
  in
  List.iter
    (fun name ->
      let ni = node cache name in
      Vec.iter (fun t -> if t.t_live then mark name t.t_pos) ni.ni_tuples)
    root_names;
  while not (Queue.is_empty queue) do
    let name, pos = Queue.pop queue in
    List.iter
      (fun (_, ei) ->
        if String.equal ei.ei_parent name then
          List.iter (fun child -> mark ei.ei_child child) (children cache ei pos))
      cache.c_edges
  done;
  (* tombstone unreached tuples *)
  List.iter
    (fun (name, ni) ->
      let h = tbl name in
      Vec.iter
        (fun t ->
          if t.t_live && not (Hashtbl.mem h t.t_pos) then begin
            t.t_live <- false;
            Obs.Metrics.incr m_evictions
          end)
        ni.ni_tuples)
    cache.c_nodes;
  (* tombstone connections touching dead tuples *)
  List.iter
    (fun (_, ei) ->
      let pn = node cache ei.ei_parent and cn = node cache ei.ei_child in
      Vec.iter
        (fun c ->
          if c.cn_live && (not (tuple pn c.cn_parent).t_live || not (tuple cn c.cn_child).t_live)
          then c.cn_live <- false)
        ei.ei_conns)
    cache.c_edges

(** [stale cache db] holds when any base table changed since the cache was
    loaded (other than through this cache's own propagation — callers that
    propagate refresh the recorded versions). *)
let stale cache db =
  Obs.Metrics.incr m_stale_checks;
  List.exists
    (fun (name, v) ->
      match Catalog.table_opt (Db.catalog db) name with
      | Some t -> Table.version t <> v
      | None -> true)
    cache.c_base_versions

(** A snapshot lookup structure over one cached node: column value ->
    positions of live tuples. Rebuild after udi operations that change the
    keyed column. *)
type key_index = { ki_node : string; ki_col : int; ki_map : (Value.t, int list) Hashtbl.t }

(** [build_key_index cache ~node ~col] indexes the live tuples of [node] by
    the value of column [col] — O(1) point access into the cache, as
    OO1-style applications expect.
    @raise Cache_error on unknown node or column. *)
let build_key_index cache ~node:name ~col =
  let ni = node cache name in
  let ci =
    match Schema.find_opt ni.ni_schema col with
    | Some i -> i
    | None -> err "no column %s in component %s" col name
  in
  let map = Hashtbl.create (max 16 (live_count ni)) in
  Vec.iter
    (fun t ->
      if t.t_live then begin
        let v = t.t_row.(ci) in
        Hashtbl.replace map v (t.t_pos :: Option.value ~default:[] (Hashtbl.find_opt map v))
      end)
    ni.ni_tuples;
  { ki_node = ni.ni_name; ki_col = ci; ki_map = map }

(** [lookup_key cache ki v] is the positions of live tuples whose keyed
    column equals [v] (stale entries for tombstoned tuples are filtered). *)
let lookup_key cache ki v =
  let ni = node cache ki.ki_node in
  let hits =
    List.filter
      (fun pos -> (tuple ni pos).t_live)
      (Option.value ~default:[] (Hashtbl.find_opt ki.ki_map v))
  in
  Obs.Metrics.incr (match hits with [] -> m_key_misses | _ -> m_key_hits);
  hits

(** [lookup_key_one cache ki v] is the unique position for [v], if any. *)
let lookup_key_one cache ki v =
  match lookup_key cache ki v with pos :: _ -> Some pos | [] -> None

(** [total_tuples cache] counts live tuples across all nodes. *)
let total_tuples cache = List.fold_left (fun acc (_, ni) -> acc + live_count ni) 0 cache.c_nodes

(** [total_conns cache] counts live connections across all edges. *)
let total_conns cache =
  List.fold_left
    (fun acc (_, ei) ->
      acc + Vec.fold (fun a c -> if c.cn_live then a + 1 else a) 0 ei.ei_conns)
    0 cache.c_edges

(** [pp] prints a summary: per node the live tuple count, per edge the live
    connection count. *)
let pp ppf cache =
  Fmt.pf ppf "CO instance:@.";
  List.iter
    (fun (name, ni) -> Fmt.pf ppf "  %s: %d tuples@." name (live_count ni))
    cache.c_nodes;
  List.iter
    (fun (name, ei) ->
      let n = Vec.fold (fun a c -> if c.cn_live then a + 1 else a) 0 ei.ei_conns in
      Fmt.pf ppf "  %s (%s -> %s): %d connections@." name ei.ei_parent ei.ei_child n)
    cache.c_edges
