(** Parser for the XNF language extensions (§3 of the paper).

    Reuses the shared SQL lexer and calls back into the SQL parser for
    embedded SELECTs (node derivations) and plain expressions (RELATE
    predicates). SUCH THAT predicates have their own grammar because they
    admit path expressions. All entry points raise
    {!Relational.Sql_lexer.Parse_error} on malformed input. *)

(** [parse_xexpr c] parses a SUCH THAT predicate at the cursor. *)
val parse_xexpr : Relational.Sql_lexer.cursor -> Xnf_ast.xexpr

(** How an [OUT OF ...] construct ends. *)
type co_tail =
  | Tail_take  (** TAKE: a CO query *)
  | Tail_delete  (** DELETE: CO deletion *)
  | Tail_update of Xnf_ast.co_update  (** UPDATE node SET ...: CO-level update *)

(** [parse_query_cursor c] parses an [OUT OF ... TAKE|DELETE|UPDATE ...]
    construct at the cursor. *)
val parse_query_cursor : Relational.Sql_lexer.cursor -> Xnf_ast.query * co_tail

(** [parse_stmt_at c] parses one XNF statement at the cursor; plain SQL
    statements fall through as [X_sql]. *)
val parse_stmt_at : Relational.Sql_lexer.cursor -> Xnf_ast.stmt

(** [parse_stmt s] parses one XNF statement from a string. *)
val parse_stmt : string -> Xnf_ast.stmt

(** [parse_stmt_diag s] parses one statement, turning parse failures into
    an [XNF000] diagnostic that carries the offending token's source
    span. *)
val parse_stmt_diag : string -> (Xnf_ast.stmt, Diag.t) result

(** [parse_query s] parses exactly one [OUT OF ... TAKE] query. *)
val parse_query : string -> Xnf_ast.query
