(** XNF view catalog and query composition (§3.2, §3.6 of the paper).

    An XNF view is a named CO definition plus any path-based restrictions
    that cannot be folded into SQL. Composition implements the closure
    property: a query may import views (merging their components), add
    fresh nodes/edges, restrict, and project — and the result can itself be
    named as a view, to any depth.

    SQL-expressible restrictions are folded at composition time: node
    restrictions wrap the node derivation in an updatable
    [SELECT * FROM (q) var WHERE pred]; edge restrictions are ANDed into
    the relationship predicate after variable renaming. Path-containing
    restrictions stay symbolic and are evaluated against the materialized
    instance by the translator. *)

type view = {
  v_name : string;
  v_def : Co_schema.t;
  v_path_restrs : Xnf_ast.restriction list;
}

type t

exception View_error of string

(** [create ()] is an empty registry. *)
val create : unit -> t

(** [version reg] counts definition changes (define/drop) since creation;
    used to validate cached fetch plans. *)
val version : t -> int

(** [find_opt reg name] looks a view up (case-insensitive). *)
val find_opt : t -> string -> view option

(** [drop reg name] removes a view. @raise View_error when absent. *)
val drop : t -> string -> unit

(** [names reg] lists registered view names, sorted. *)
val names : t -> string list

(** [clear reg] removes every view and bumps the version (recovery's
    blank slate). *)
val clear : t -> unit

(** [compose reg q] builds the fully composed (un-projected) CO definition
    of query [q], the residual path-based restrictions, and the TAKE
    clause. Structural projection applies to the evaluated instance
    (evaluate-then-project), so a restriction may reference a component the
    TAKE clause drops.
    @raise View_error / Co_schema.Schema_error on semantic errors. *)
val compose : t -> Xnf_ast.query -> Co_schema.t * Xnf_ast.restriction list * Xnf_ast.take

(** [define reg ~name q] composes [q] and registers it as a view. A view's
    TAKE clause is part of its definition: the view exports only the
    projected components.
    @raise View_error on duplicate names or restrictions referencing
    projected-away components. *)
val define : t -> name:string -> Xnf_ast.query -> unit
