(* Parser for the XNF language extensions.

   Reuses the shared SQL lexer/cursor and calls back into the SQL parser
   for embedded SELECTs (node derivations) and plain expressions (RELATE
   predicates). SUCH THAT predicates get their own expression grammar
   because they admit path expressions ([v->edge->(Node n WHERE p)->...])
   in primary position and inside COUNT/EXISTS. *)

open Relational
open Xnf_ast

module L = Sql_lexer

let parse_error = L.error

(* ---- SUCH THAT predicates (xexpr) ---- *)

(* a path starts with IDENT followed by "->" *)
let at_path c = (match L.peek c with L.IDENT _ -> true | _ -> false) && L.peek2 c = L.SYM "->"

(* AND is both the predicate conjunction and the restriction separator
   ("WHERE a SUCH THAT ... AND b SUCH THAT ..."). The predicate parser must
   not swallow an AND that introduces the next restriction: look ahead for
   the restriction shapes  ident [ident] SUCH  and  ident ( ident , ident )
   SUCH. *)
let looks_like_restriction (c : L.cursor) pos =
  let get i = if pos + i < Array.length c.L.toks then c.L.toks.(pos + i) else L.EOF in
  match get 0 with
  | L.IDENT _ -> begin
    match get 1 with
    | L.KW "SUCH" -> true
    | L.IDENT _ -> get 2 = L.KW "SUCH"
    | L.SYM "(" -> begin
      match get 2, get 3, get 4, get 5, get 6 with
      | L.IDENT _, L.SYM ",", L.IDENT _, L.SYM ")", L.KW "SUCH" -> true
      | _ -> false
    end
    | _ -> false
  end
  | _ -> false

let rec parse_xexpr c : xexpr = parse_or c

and parse_or c =
  let lhs = parse_and c in
  if L.accept_kw c "OR" then X_or (lhs, parse_or c) else lhs

and parse_and c =
  let lhs = parse_not c in
  if L.at_kw c "AND" && not (looks_like_restriction c (c.L.pos + 1)) then begin
    ignore (L.advance c);
    X_and (lhs, parse_and c)
  end
  else lhs

and parse_not c = if L.accept_kw c "NOT" then X_not (parse_not c) else parse_comparison c

and parse_comparison c =
  let lhs = parse_additive c in
  let cmp op =
    ignore (L.advance c);
    X_cmp (op, lhs, parse_additive c)
  in
  match L.peek c with
  | L.SYM "=" -> cmp Expr.Eq
  | L.SYM "<>" -> cmp Expr.Ne
  | L.SYM "<" -> cmp Expr.Lt
  | L.SYM "<=" -> cmp Expr.Le
  | L.SYM ">" -> cmp Expr.Gt
  | L.SYM ">=" -> cmp Expr.Ge
  | L.KW "IS" ->
    ignore (L.advance c);
    let negated = L.accept_kw c "NOT" in
    L.expect_kw c "NULL";
    if negated then X_is_not_null lhs else X_is_null lhs
  | L.KW "LIKE" ->
    ignore (L.advance c);
    X_like (lhs, parse_additive c)
  | L.KW "IN" ->
    ignore (L.advance c);
    L.expect_sym c "(";
    let rec items acc =
      let e = parse_xexpr c in
      if L.accept_sym c "," then items (e :: acc) else List.rev (e :: acc)
    in
    let is = items [] in
    L.expect_sym c ")";
    X_in_list (lhs, is)
  | _ -> lhs

and parse_additive c =
  let rec go lhs =
    if L.at_sym c "+" then begin
      ignore (L.advance c);
      go (X_arith (Expr.Add, lhs, parse_multiplicative c))
    end
    else if L.at_sym c "-" then begin
      ignore (L.advance c);
      go (X_arith (Expr.Sub, lhs, parse_multiplicative c))
    end
    else lhs
  in
  go (parse_multiplicative c)

and parse_multiplicative c =
  let rec go lhs =
    if L.at_sym c "*" then begin
      ignore (L.advance c);
      go (X_arith (Expr.Mul, lhs, parse_unary c))
    end
    else if L.at_sym c "/" then begin
      ignore (L.advance c);
      go (X_arith (Expr.Div, lhs, parse_unary c))
    end
    else if L.at_sym c "%" then begin
      ignore (L.advance c);
      go (X_arith (Expr.Mod, lhs, parse_unary c))
    end
    else lhs
  in
  go (parse_unary c)

and parse_unary c = if L.accept_sym c "-" then X_neg (parse_unary c) else parse_primary c

and parse_primary c =
  match L.peek c with
  | _ when at_path c -> begin
    let p = parse_path c in
    (* a bare path in predicate position means non-emptiness *)
    X_exists_path p
  end
  | L.INT i ->
    ignore (L.advance c);
    X_lit (Value.Int i)
  | L.FLOAT f ->
    ignore (L.advance c);
    X_lit (Value.Float f)
  | L.STRING s ->
    ignore (L.advance c);
    X_lit (Value.Str s)
  | L.KW "TRUE" ->
    ignore (L.advance c);
    X_lit (Value.Bool true)
  | L.KW "FALSE" ->
    ignore (L.advance c);
    X_lit (Value.Bool false)
  | L.KW "NULL" ->
    ignore (L.advance c);
    X_lit Value.Null
  | L.SYM "?" ->
    ignore (L.advance c);
    let i = c.L.params in
    c.L.params <- i + 1;
    X_param i
  | L.KW "EXISTS" -> begin
    ignore (L.advance c);
    if L.accept_sym c "(" then begin
      let e =
        if at_path c then X_exists_path (parse_path c) else parse_xexpr c
      in
      L.expect_sym c ")";
      e
    end
    else X_exists_path (parse_path c)
  end
  | L.SYM "(" ->
    ignore (L.advance c);
    let e = parse_xexpr c in
    L.expect_sym c ")";
    e
  | L.IDENT name -> begin
    ignore (L.advance c);
    if L.at_sym c "(" then begin
      ignore (L.advance c);
      (* COUNT over a path or a normal function call *)
      if String.lowercase_ascii name = "count" && at_path c then begin
        let p = parse_path c in
        L.expect_sym c ")";
        X_count_path p
      end
      else begin
        let rec args acc =
          if L.at_sym c ")" then List.rev acc
          else begin
            let e = parse_xexpr c in
            if L.accept_sym c "," then args (e :: acc) else List.rev (e :: acc)
          end
        in
        let a = args [] in
        L.expect_sym c ")";
        X_fn (name, a)
      end
    end
    else if L.at_sym c "." && (match L.peek2 c with L.IDENT _ -> true | _ -> false) then begin
      ignore (L.advance c);
      let col = L.expect_ident c in
      X_col (Some name, col)
    end
    else X_col (None, name)
  end
  | _ -> parse_error c "expected predicate expression"

(* path := start (-> step)+ *)
and parse_path c : path =
  let start = L.expect_ident c in
  let rec steps acc =
    if L.accept_sym c "->" then steps (parse_step c :: acc) else List.rev acc
  in
  let p_steps = steps [] in
  if p_steps = [] then parse_error c "path expression needs at least one -> step";
  { p_start = start; p_steps }

and parse_step c : step =
  if L.accept_sym c "(" then begin
    (* qualified node step: (Node [var] [WHERE pred]) *)
    let node = L.expect_ident c in
    let var = match L.peek c with
      | L.IDENT v ->
        ignore (L.advance c);
        Some v
      | _ -> None
    in
    let pred = if L.accept_kw c "WHERE" then Some (parse_xexpr c) else None in
    L.expect_sym c ")";
    Step_node { sn_node = node; sn_var = var; sn_pred = pred }
  end
  else begin
    let name = L.expect_ident c in
    (* edge vs node is resolved semantically; parse as edge step and let
       the semantic layer reinterpret node names *)
    Step_edge name
  end

(* ---- bindings ---- *)

let parse_attr c =
  let e = Sql_parser.parse_expr c in
  let name =
    if L.accept_kw c "AS" then L.expect_ident c
    else
      match e with
      | Sql_ast.E_col (_, n) -> n
      | _ -> parse_error c "WITH ATTRIBUTES expression needs AS <name>"
  in
  (e, name)

let parse_relate c =
  L.expect_kw c "RELATE";
  let parent = L.expect_ident c in
  let parent_var = match L.peek c with
    | L.IDENT v ->
      ignore (L.advance c);
      Some v
    | _ -> None
  in
  L.expect_sym c ",";
  let child = L.expect_ident c in
  let child_var = match L.peek c with
    | L.IDENT v ->
      ignore (L.advance c);
      Some v
    | _ -> None
  in
  let attrs =
    if L.accept_kw c "WITH" then begin
      L.expect_kw c "ATTRIBUTES";
      let rec go acc =
        let a = parse_attr c in
        if L.accept_sym c "," then go (a :: acc) else List.rev (a :: acc)
      in
      go []
    end
    else []
  in
  let using =
    if L.accept_kw c "USING" then begin
      let table = L.expect_ident c in
      let alias = match L.peek c with
        | L.IDENT a ->
          ignore (L.advance c);
          a
        | _ -> table
      in
      Some (table, alias)
    end
    else None
  in
  L.expect_kw c "WHERE";
  let pred = Sql_parser.parse_expr c in
  (parent, parent_var, child, child_var, attrs, using, pred)

let parse_binding c : binding =
  let name = L.expect_ident c in
  if L.accept_kw c "AS" then begin
    if L.accept_sym c "(" then begin
      if L.at_kw c "RELATE" then begin
        let parent, parent_var, child, child_var, attrs, using, pred = parse_relate c in
        L.expect_sym c ")";
        B_edge
          { be_name = name; be_parent = parent; be_parent_var = parent_var; be_child = child;
            be_child_var = child_var; be_attrs = attrs; be_using = using; be_pred = pred }
      end
      else begin
        let q = Sql_parser.parse_select_cursor c in
        L.expect_sym c ")";
        B_node { bn_name = name; bn_query = q }
      end
    end
    else begin
      (* shorthand: Xemp AS EMP *)
      let table = L.expect_ident c in
      B_node { bn_name = name; bn_query = Sql_ast.select_star_from table }
    end
  end
  else B_view name

(* ---- restrictions ---- *)

let parse_restriction c : restriction =
  let name = L.expect_ident c in
  if L.accept_sym c "(" then begin
    (* edge restriction: edge (p, c) SUCH THAT pred *)
    let pv = L.expect_ident c in
    L.expect_sym c ",";
    let cv = L.expect_ident c in
    L.expect_sym c ")";
    L.expect_kw c "SUCH";
    L.expect_kw c "THAT";
    let pred = parse_xexpr c in
    R_edge { re_edge = name; re_parent_var = pv; re_child_var = cv; re_pred = pred }
  end
  else begin
    let var = match L.peek c with
      | L.IDENT v when not (L.at_kw c "SUCH") ->
        ignore (L.advance c);
        Some v
      | _ -> None
    in
    L.expect_kw c "SUCH";
    L.expect_kw c "THAT";
    let pred = parse_xexpr c in
    R_node { rn_node = name; rn_var = var; rn_pred = pred }
  end

(* ---- TAKE ---- *)

let parse_take_item c : take_item =
  let name = L.expect_ident c in
  if L.accept_sym c "(" then begin
    if L.accept_sym c "*" then begin
      L.expect_sym c ")";
      Take_node (name, Take_all_cols)
    end
    else begin
      let rec cols acc =
        let col = L.expect_ident c in
        if L.accept_sym c "," then cols (col :: acc) else List.rev (col :: acc)
      in
      let cs = cols [] in
      L.expect_sym c ")";
      Take_node (name, Take_cols cs)
    end
  end
  else Take_edge name

let parse_take c : take =
  if L.accept_sym c "*" then Take_star
  else begin
    let rec items acc =
      let item = parse_take_item c in
      if L.accept_sym c "," then items (item :: acc) else List.rev (item :: acc)
    in
    Take_items (items [])
  end

(* ---- queries and statements ---- *)

(** How an [OUT OF ...] construct ends. *)
type co_tail =
  | Tail_take  (** TAKE: a CO query *)
  | Tail_delete  (** DELETE: CO deletion *)
  | Tail_update of co_update  (** UPDATE node SET ...: CO-level update *)

(** [parse_query_cursor c] parses an [OUT OF ... TAKE|DELETE|UPDATE ...]
    construct at the cursor. *)
let parse_query_cursor c : query * co_tail =
  L.expect_kw c "OUT";
  L.expect_kw c "OF";
  let rec bindings acc =
    let b = parse_binding c in
    if L.accept_sym c "," then bindings (b :: acc) else List.rev (b :: acc)
  in
  let out_of = bindings [] in
  let where =
    if L.accept_kw c "WHERE" then begin
      let rec go acc =
        let r = parse_restriction c in
        if L.accept_kw c "AND" then go (r :: acc) else List.rev (r :: acc)
      in
      go []
    end
    else []
  in
  if L.accept_kw c "TAKE" then
    ({ q_out_of = out_of; q_where = where; q_take = parse_take c }, Tail_take)
  else if L.accept_kw c "DELETE" then
    ({ q_out_of = out_of; q_where = where; q_take = parse_take c }, Tail_delete)
  else if L.accept_kw c "UPDATE" then begin
    let node = L.expect_ident c in
    L.expect_kw c "SET";
    let rec sets acc =
      let col = L.expect_ident c in
      L.expect_sym c "=";
      let e = Sql_parser.parse_expr c in
      if L.accept_sym c "," then sets ((col, e) :: acc) else List.rev ((col, e) :: acc)
    in
    ( { q_out_of = out_of; q_where = where; q_take = Take_star },
      Tail_update { cu_node = node; cu_sets = sets [] } )
  end
  else parse_error c "expected TAKE, DELETE or UPDATE"

(** [parse_stmt_at c] parses one XNF statement at the cursor; plain SQL
    statements fall through to the relational parser ([X_sql]). CREATE
    VIEW dispatches on the body: [OUT OF] makes an XNF view, anything else
    a tabular view. *)
let parse_stmt_at (c : L.cursor) : stmt =
  let stmt =
    match L.peek c with
    | L.KW "OUT" -> begin
      match parse_query_cursor c with
      | q, Tail_take -> X_query q
      | q, Tail_delete -> X_delete q
      | q, Tail_update cu -> X_update (q, cu)
    end
    | L.KW "CREATE" when L.peek2 c = L.KW "VIEW" ->
      let save = c.L.pos in
      ignore (L.advance c);
      ignore (L.advance c);
      let name = L.expect_ident c in
      L.expect_kw c "AS";
      if L.at_kw c "OUT" then begin
        match parse_query_cursor c with
        | q, Tail_take -> X_create_view (name, q)
        | _, (Tail_delete | Tail_update _) -> parse_error c "DML in view definition"
      end
      else begin
        c.L.pos <- save;
        X_sql (Sql_parser.parse_stmt_cursor c)
      end
    | L.KW "DROP" when L.peek2 c = L.KW "VIEW" -> begin
      (* try XNF view first; the API layer falls back to SQL views *)
      ignore (L.advance c);
      ignore (L.advance c);
      X_drop_view (L.expect_ident c)
    end
    | L.KW "PREPARE" -> begin
      ignore (L.advance c);
      let name = L.expect_ident c in
      L.expect_kw c "AS";
      match parse_query_cursor c with
      | q, Tail_take -> X_prepare (name, q)
      | _, (Tail_delete | Tail_update _) -> parse_error c "only CO queries can be prepared"
    end
    | L.KW "EXECUTE" ->
      ignore (L.advance c);
      let name = L.expect_ident c in
      let vals =
        if L.accept_sym c "(" then begin
          let parse_literal () =
            let negate = L.accept_sym c "-" in
            match L.peek c with
            | L.INT i ->
              ignore (L.advance c);
              Value.Int (if negate then -i else i)
            | L.FLOAT f ->
              ignore (L.advance c);
              Value.Float (if negate then -.f else f)
            | L.STRING s when not negate ->
              ignore (L.advance c);
              Value.Str s
            | L.KW "TRUE" when not negate ->
              ignore (L.advance c);
              Value.Bool true
            | L.KW "FALSE" when not negate ->
              ignore (L.advance c);
              Value.Bool false
            | L.KW "NULL" when not negate ->
              ignore (L.advance c);
              Value.Null
            | _ -> parse_error c "expected literal parameter value"
          in
          let rec go acc =
            let v = parse_literal () in
            if L.accept_sym c "," then go (v :: acc) else List.rev (v :: acc)
          in
          let vs = go [] in
          L.expect_sym c ")";
          vs
        end
        else []
      in
      X_execute (name, vals)
    | _ -> X_sql (Sql_parser.parse_stmt_cursor c)
  in
  ignore (L.accept_sym c ";");
  (match L.peek c with
  | L.EOF -> ()
  | _ -> parse_error c "trailing input after statement");
  stmt

(** [parse_stmt s] parses one XNF statement from a string. *)
let parse_stmt s : stmt = parse_stmt_at (L.cursor_of_string s)

(** [parse_stmt_diag s] parses one statement, turning parse failures into
    an [XNF000] diagnostic that carries the offending token's source
    span. *)
let parse_stmt_diag s : (stmt, Diag.t) result =
  match L.cursor_of_string s with
  | exception L.Parse_error msg -> Error (Diag.of_parse_error msg)
  | c -> begin
    (* the cursor does not advance past the token an error points at, so
       its current span locates the failure *)
    match parse_stmt_at c with
    | stmt -> Ok stmt
    | exception L.Parse_error msg -> Error (Diag.of_parse_error ~span:(L.span c) msg)
  end

(** [parse_query s] parses exactly one [OUT OF ... TAKE] query. *)
let parse_query s : query =
  let c = L.cursor_of_string s in
  let q =
    match parse_query_cursor c with
    | q, Tail_take -> q
    | _, (Tail_delete | Tail_update _) -> parse_error c "expected TAKE, got CO DML"
  in
  ignore (L.accept_sym c ";");
  (match L.peek c with
  | L.EOF -> ()
  | _ -> parse_error c "trailing input after query");
  q
