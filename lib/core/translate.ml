(* The XNF semantic rewrite and cache loader (§4.3).

   Translation formulates relational work per node and per relationship of
   the composed CO definition, observing reachability:

     - *root* extents are evaluated set-orientedly from their derivations;
     - reachability runs as a semi-naive delta fixpoint over the schema
       graph: per round, only the parent tuples discovered in the previous
       round probe each outgoing relationship. DAG schemas converge in one
       topological sweep; recursive schemas iterate. The naive variant
       (re-probing from full reached sets, E6 ablation) is selectable
       through [`Naive`];
     - each probe is *access-path selected*, like the plan optimizer does
       for parent/child joins ("in the plan optimizer handling of joins is
       heavily used since parent child relationships are computed by
       joins"): an FK-equality relationship whose child is a plain base
       table with an index on the FK column runs as an index-nested-loop
       probe; a USING relationship with indexed link bindings chains two
       index lookups; everything else falls back to a generic plan — the
       parent frontier and the child's materialized extent joined through
       the relational engine (shared-temporary common subexpressions,
       query rewrite and join-method selection included);
     - non-root extents are therefore *lazy*: only reached tuples are ever
       materialized, which is what makes working-set extraction at 10^-4
       selectivity set-oriented AND cheap (E3);
     - connection extents are computed per relationship after reachability,
       with the same access-path choice.

   All generic queries are QGM trees executed through the relational
   engine, so query rewrite (predicate pushdown -> hash joins) and plan
   optimization apply to them exactly as to user SQL — toggled per session
   for the E7 ablation. *)

open Relational
open Xnf_ast

exception Translate_error of string

let err fmt = Fmt.kstr (fun s -> raise (Translate_error s)) fmt

type fixpoint = Semi_naive | Naive

(** Edge access paths, in static selection-priority order — the
    definition lives in [Relational.Edge_cost] so the shared cost model
    and the planner speak the same type. *)
type strategy = Edge_cost.strategy = S_indexed | S_hash | S_generic

let strategy_name = Edge_cost.strategy_name

(** Statistics of translation activity since the last [reset_stats]. *)
type stats = {
  mutable queries_issued : int;  (** relational queries / batch probes run *)
  mutable fixpoint_rounds : int;
  mutable tuples_probed : int;  (** total frontier sizes fed to edge probes *)
  mutable indexed_probes : int;  (** edges served by index-nested-loop probes *)
  mutable generic_probes : int;  (** edges served by generic join plans *)
  mutable hash_edges : int;  (** edges served by batch hash probes *)
  mutable hash_builds : int;  (** hash tables built over child/link extents *)
  mutable hash_build_reuses : int;  (** builds skipped: cached table still version-valid *)
  mutable hash_probes : int;  (** batch hash probe passes run *)
  mutable cost_picks : int;  (** edges whose strategy came from the cost model *)
  mutable strategy_switches : int;  (** adaptive mid-fixpoint strategy switches *)
}

let stats =
  { queries_issued = 0; fixpoint_rounds = 0; tuples_probed = 0; indexed_probes = 0;
    generic_probes = 0; hash_edges = 0; hash_builds = 0; hash_build_reuses = 0; hash_probes = 0;
    cost_picks = 0; strategy_switches = 0 }

let reset_stats () =
  stats.queries_issued <- 0;
  stats.fixpoint_rounds <- 0;
  stats.tuples_probed <- 0;
  stats.indexed_probes <- 0;
  stats.generic_probes <- 0;
  stats.hash_edges <- 0;
  stats.hash_builds <- 0;
  stats.hash_build_reuses <- 0;
  stats.hash_probes <- 0;
  stats.cost_picks <- 0;
  stats.strategy_switches <- 0

(* the same activity, mirrored into the process-global metrics registry
   (the [stats] record stays per-module for the existing harness API) *)
let m_queries = Obs.Metrics.counter "xnf.translate.queries"
let m_rounds = Obs.Metrics.counter "xnf.translate.rounds"
let m_tuples_probed = Obs.Metrics.counter "xnf.translate.tuples_probed"
let m_indexed_probes = Obs.Metrics.counter "xnf.translate.indexed_probes"
let m_generic_probes = Obs.Metrics.counter "xnf.translate.generic_probes"
let m_hash_edges = Obs.Metrics.counter "xnf.translate.hash_edges"
let m_hash_builds = Obs.Metrics.counter "xnf.translate.hash_builds"
let m_hash_build_reuses = Obs.Metrics.counter "xnf.translate.hash_build_reuses"
let m_hash_probes = Obs.Metrics.counter "xnf.translate.hash_probes"
let m_cost_picks = Obs.Metrics.counter "xnf.translate.cost_picks"
let m_strategy_switches = Obs.Metrics.counter "xnf.translate.strategy_switches"

(* ---- adaptive mid-fixpoint fallback knobs ----

   Between semi-naive rounds the executor compares observed
   probe/connection/candidate-scan counters against the plan's estimates
   and switches an edge's strategy for subsequent rounds when they
   diverge beyond [adaptive_factor] (at least [adaptive_min_rows]
   observed rows, so tiny instances never flap). Process-global knobs,
   like the optimizer toggles. *)

let adaptive_on = ref true
let adaptive_factor_v = ref 8.
let adaptive_min_rows_v = ref 64

let set_adaptive b = adaptive_on := b
let adaptive_enabled () = !adaptive_on
let set_adaptive_factor f = adaptive_factor_v := Float.max 0. f
let adaptive_factor () = !adaptive_factor_v
let set_adaptive_min_rows n = adaptive_min_rows_v := max 0 n
let adaptive_min_rows () = !adaptive_min_rows_v

let note_query () =
  stats.queries_issued <- stats.queries_issued + 1;
  Obs.Metrics.incr m_queries

let run_query db qgm =
  note_query ();
  Db.run_qgm db qgm

let clear_quals schema =
  Schema.make (List.map (fun c -> { c with Schema.col_qualifier = "" }) (Schema.columns schema))

(* ---- simple-node analysis: direct base-table access ----

   A node derivation that is a stack of star-selects over one base-table
   select (the shape restriction folding produces) evaluates as: scan or
   index-probe the base table, filter with the combined predicate (bound
   over the base row), project the named columns. Provenance (rowid) comes
   for free, and probers can use the table's indexes. *)

type simple = {
  s_table : Table.t;
  s_proj : int array;  (** node output column -> base column *)
  s_pred : Expr.t option;  (** combined predicate over the base row *)
}

let rec analyze_simple db (q : Sql_ast.select) : (simple * Schema.t) option =
  if q.Sql_ast.sel_distinct || q.Sql_ast.sel_group_by <> [] || q.Sql_ast.sel_having <> None
     || q.Sql_ast.sel_limit <> None || q.Sql_ast.sel_order_by <> []
     || q.Sql_ast.sel_unions <> []
  then None
  else
    let env = Db.bind_env db in
    match q.Sql_ast.sel_from with
    | [ Sql_ast.From_table (table, alias) ] -> begin
      match Catalog.table_opt (Db.catalog db) table with
      | None -> None
      | Some base -> begin
        let alias = Option.value ~default:table alias in
        let scan_schema = Schema.requalify alias (Table.schema base) in
        let pred =
          try Option.map (Binder.bind_expr env scan_schema) q.Sql_ast.sel_where
          with Binder.Bind_error _ -> raise Exit
        in
        let proj =
          match q.Sql_ast.sel_items with
          | [ Sql_ast.Sel_star ] -> Some (Array.init (Schema.arity scan_schema) Fun.id)
          | items ->
            let cols =
              List.map
                (function
                  | Sql_ast.Sel_expr (Sql_ast.E_col (_, n), alias)
                    when (match alias with
                         | None -> true
                         | Some a -> String.lowercase_ascii a = String.lowercase_ascii n) ->
                    Schema.find_opt scan_schema n
                  | _ -> None)
                items
            in
            if List.for_all Option.is_some cols then
              Some (Array.of_list (List.map Option.get cols))
            else None
        in
        match proj with
        | None -> None
        | Some proj ->
          let out_schema =
            clear_quals
              (Schema.make (Array.to_list (Array.map (fun i -> Schema.col scan_schema i) proj)))
          in
          Some ({ s_table = base; s_proj = proj; s_pred = pred }, out_schema)
      end
    end
    | [ Sql_ast.From_select (inner, alias) ] when q.Sql_ast.sel_items = [ Sql_ast.Sel_star ] -> begin
      match analyze_simple db inner with
      | None -> None
      | Some (inner_simple, inner_schema) -> begin
        let wrapper_schema = Schema.requalify alias inner_schema in
        match
          try Ok (Option.map (Binder.bind_expr env wrapper_schema) q.Sql_ast.sel_where)
          with Binder.Bind_error e -> Error e
        with
        | Error _ -> None
        | Ok wpred ->
          (* rebase the wrapper predicate from projected positions to base
             positions *)
          let wpred = Option.map (Expr.map_cols (fun i -> inner_simple.s_proj.(i))) wpred in
          let pred =
            match inner_simple.s_pred, wpred with
            | None, p | p, None -> p
            | Some a, Some b -> Some (Expr.And (a, b))
          in
          Some ({ inner_simple with s_pred = pred }, inner_schema)
      end
    end
    | _ -> None

let analyze_simple db q = try analyze_simple db q with Exit -> None

(* ---- per-node runtime state ---- *)

type extent = {
  x_schema : Schema.t;
  x_rows : Row.enc array;  (** node-output rows, dictionary-encoded *)
  x_rowids : int array;  (** base rowids; [-1] = no provenance *)
}

type node_rt = {
  nr_def : Co_schema.node_def;
  nr_simple : simple option;
  nr_ni : Cache.node_inst;
  mutable nr_extent : extent option;  (** full base extent (generic path only) *)
  mutable nr_temp : Table.t option;  (** shared temp of [nr_extent] *)
  nr_tid2pos : Intmap.t;  (** extent index -> cache position *)
  (* semi-naive frontier: every tuple is created exactly once and must be
     probed exactly once, so creation order IS the queue — a round probes
     the position slice [nr_mark, nr_limit) snapshotted at round start *)
  mutable nr_mark : int;
  mutable nr_limit : int;
}

let node_schema db (nd : Co_schema.node_def) ~simple =
  match simple with
  | Some (_, schema) -> schema
  | None ->
    let qgm = Db.bind_select db nd.Co_schema.nd_query in
    clear_quals (Qgm.schema_of (Db.catalog db) qgm)

(* full base extent, for the generic probe path *)
let ensure_extent db (rt : node_rt) : extent =
  match rt.nr_extent with
  | Some x -> x
  | None ->
    note_query ();
    let x =
      match rt.nr_simple with
      | Some s ->
        let rows = ref [] in
        Table.iter
          (fun rowid row ->
            let keep =
              match s.s_pred with None -> true | Some p -> Value.is_true (Expr.eval_pred row p)
            in
            if keep then rows := (Row.encode (Row.project row s.s_proj), rowid) :: !rows)
          s.s_table;
        let rows = List.rev !rows in
        { x_schema = rt.nr_ni.Cache.ni_schema; x_rows = Array.of_list (List.map fst rows);
          x_rowids = Array.of_list (List.map snd rows) }
      | None ->
        let qgm = Db.bind_select db rt.nr_def.Co_schema.nd_query in
        let rows = Array.of_seq (Seq.map Row.encode (Db.run_qgm db qgm)) in
        { x_schema = rt.nr_ni.Cache.ni_schema; x_rows = rows;
          x_rowids = Array.map (fun _ -> -1) rows }
    in
    rt.nr_extent <- Some x;
    x

let tid_column = Schema.column ~nullable:false "__tid" Schema.Ty_int

let temp_counter = ref 0

(* temps live in the Value-level relational engine: cached/extent rows
   decode at this boundary *)
let make_temp schema (rows : (int * Row.enc) Seq.t) : Table.t =
  incr temp_counter;
  let cols =
    tid_column
    :: List.map (fun c -> { c with Schema.col_nullable = true; col_qualifier = "" })
         (Schema.columns schema)
  in
  let t = Table.create ~name:(Printf.sprintf "__xnf_tmp%d" !temp_counter) (Schema.make cols) in
  Seq.iter
    (fun (tid, row) -> ignore (Table.insert t (Array.append [| Value.Int tid |] (Row.decode row))))
    rows;
  t

let ensure_temp db rt =
  match rt.nr_temp with
  | Some t -> t
  | None ->
    let x = ensure_extent db rt in
    let t =
      make_temp x.x_schema
        (Seq.zip (Seq.ints 0) (Array.to_seq x.x_rows) |> Seq.take (Array.length x.x_rows))
    in
    rt.nr_temp <- Some t;
    t

(* ---- probers ----

   A prober answers "children of this parent tuple" for one relationship.
   The indexed form resolves matches through base-table indexes in OCaml —
   the executed form of an index-nested-loop plan; the hash form through
   version-cached hash builds; the generic fallback routes a frontier
   batch through the relational engine.

   Delivery is CPS: per match the prober calls [emit rowid base_enc
   attrs] with the child's base rowid (identity), its ENCODED base row
   (the consumer projects to node-output columns only when the tuple is
   first materialized) and the ENCODED relationship-attribute row. The
   fast path (no residual predicate, no WITH ATTRIBUTES, no probe-time
   child predicate) allocates nothing per hit: no record, no list cons,
   no row copy, no decode. *)

type emit = int -> Row.enc -> Row.enc -> unit
type prober = Row.enc -> emit -> unit

let empty_enc : Row.enc = [||]

let edge_conjuncts (ed : Co_schema.edge_def) =
  let rec split = function
    | Sql_ast.E_and (a, b) -> split a @ split b
    | e -> [ e ]
  in
  split ed.Co_schema.ed_pred

let qual_is alias = function
  | Some q -> String.equal (String.lowercase_ascii q) alias
  | None -> false

(* shared prelude of the OCaml-executed probe paths (index-nested-loop
   and batch hash): the concat schema residual predicates and attributes
   bind over, and the per-EXECUTE parameter specialization. *)
let prober_ctx db (ed : Co_schema.edge_def) ~(parent_schema : Schema.t) ~(child : simple) =
  let pa = ed.Co_schema.ed_parent_alias and ca = ed.Co_schema.ed_child_alias in
  let child_base_schema = Table.schema child.s_table in
  (* the schema residual predicates and attributes bind over *)
  let concat_schema =
    let base = Schema.concat (Schema.requalify pa parent_schema) (Schema.requalify ca child_base_schema) in
    match ed.Co_schema.ed_using with
    | None -> base
    | Some (t, a) -> begin
      match Catalog.table_opt (Db.catalog db) t with
      | Some link -> Schema.concat base (Schema.requalify a (Table.schema link))
      | None -> base
    end
  in
  let env = Db.bind_env db in
  let bind_residual residual =
    match residual with
    | [] -> None
    | cs -> Some (Binder.bind_expr env concat_schema (List.fold_left (fun a c -> Sql_ast.E_and (a, c)) (List.hd cs) (List.tl cs)))
  in
  let attr_fns =
    List.map (fun (e, _) -> Binder.bind_expr env concat_schema e) ed.Co_schema.ed_attrs
  in
  (* when the edge carries no WITH ATTRIBUTES, hits never need the
     parent++child concat row unless a residual predicate asks for it —
     probers use this to skip the per-hit decode and row allocation
     entirely *)
  let no_attrs = ed.Co_schema.ed_attrs = [] in
  (* bind parameter slots once per EXECUTE, not once per probed row *)
  let specialize params =
    let sub e = if Array.length params = 0 then e else Expr.subst_params params e in
    let afns = List.map sub attr_fns in
    let eval_attrs concat =
      Row.encode (Array.of_list (List.map (fun e -> Expr.eval concat e) afns))
    in
    let cpred = Option.map sub child.s_pred in
    let child_ok base_row =
      match cpred with None -> true | Some p -> Value.is_true (Expr.eval_pred base_row p)
    in
    (sub, eval_attrs, child_ok)
  in
  (bind_residual, no_attrs, specialize)

(* try to build an index-nested-loop prober for [ed]; [parent_schema] is
   the parent node's output schema, the child must be simple. The result
   is parameterized over EXECUTE-time values: applying it to a [params]
   array substitutes the parameter slots once and yields the per-row
   probe function. The [int ref] counts candidate rows scanned (index
   bucket sizes before residual filtering, cumulative over the prober's
   lifetime) — the observable the adaptive fallback compares against the
   plan's scan estimate, since stale statistics cannot show a skewed
   bucket but the counter does. *)
let build_indexed_prober db (ed : Co_schema.edge_def) ~(parent_schema : Schema.t)
    ~(child : simple) : ((Value.t array -> prober) * int ref) option =
  let pa = ed.Co_schema.ed_parent_alias and ca = ed.Co_schema.ed_child_alias in
  let child_base_schema = Table.schema child.s_table in
  let conjuncts = edge_conjuncts ed in
  let bind_residual, no_attrs, specialize = prober_ctx db ed ~parent_schema ~child in
  match ed.Co_schema.ed_using with
  | None -> begin
    (* FK form: find one equality parent.a = child.b with an index on b *)
    let classify (q, n) =
      if qual_is pa q then
        Option.map (fun i -> `Parent i) (Schema.find_opt parent_schema n)
      else if qual_is ca q then
        Option.map (fun i -> `Child i) (Schema.find_opt child_base_schema n)
      else None
    in
    let rec pick seen = function
      | [] -> None
      | (Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) as c) :: rest -> begin
        match classify (qa, na), classify (qb, nb) with
        | Some (`Parent p), Some (`Child ch) | Some (`Child ch), Some (`Parent p) -> begin
          match Table.find_index child.s_table ~cols:[| ch |] with
          | Some idx -> Some (p, idx, List.rev_append seen rest)
          | None -> pick (c :: seen) rest
        end
        | _ -> pick (c :: seen) rest
      end
      | c :: rest -> pick (c :: seen) rest
    in
    match pick [] conjuncts with
    | None -> None
    | Some (parent_col, idx, residual) ->
      let residual0 = bind_residual residual in
      let scanned = ref 0 in
      Some
        ( (fun params ->
            let sub, eval_attrs, child_ok = specialize params in
            let residual = Option.map sub residual0 in
            fun parent_row emit ->
            let key_id = parent_row.(parent_col) in
            if not (Dict.is_null key_id) then begin
              let cands = Table.lookup_index child.s_table idx [| Dict.decode key_id |] in
              scanned := !scanned + List.length cands;
              if residual = None && no_attrs then
                (* fast path: nothing reads the concat row — skip it *)
                List.iter
                  (fun (rowid, base_row) ->
                    if child_ok base_row then emit rowid (Row.encode base_row) empty_enc)
                  cands
              else begin
                let parent_dec = Row.decode parent_row in
                List.iter
                  (fun (rowid, base_row) ->
                    if child_ok base_row then begin
                      let concat = Row.concat parent_dec base_row in
                      let keep =
                        match residual with
                        | None -> true
                        | Some p -> Value.is_true (Expr.eval_pred concat p)
                      in
                      if keep then emit rowid (Row.encode base_row) (eval_attrs concat)
                    end)
                  cands
              end
            end),
          scanned )
  end
  | Some (link_name, la) -> begin
    match Catalog.table_opt (Db.catalog db) link_name with
    | None -> err "[XNF005] relationship %s: USING table %s does not exist" ed.Co_schema.ed_name link_name
    | Some link -> begin
      let link_schema = Table.schema link in
      let la = String.lowercase_ascii la in
      let classify (q, n) =
        if qual_is pa q then Option.map (fun i -> `Parent i) (Schema.find_opt parent_schema n)
        else if qual_is ca q then
          Option.map (fun i -> `Child i) (Schema.find_opt child_base_schema n)
        else if qual_is la q then Option.map (fun i -> `Link i) (Schema.find_opt link_schema n)
        else None
      in
      (* split equality conjuncts into link-parent and link-child bindings *)
      let parent_bind = ref [] and child_bind = ref [] and residual = ref [] in
      List.iter
        (fun c ->
          match c with
          | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) -> begin
            match classify (qa, na), classify (qb, nb) with
            | Some (`Link l), Some (`Parent p) | Some (`Parent p), Some (`Link l) ->
              parent_bind := (l, p) :: !parent_bind
            | Some (`Link l), Some (`Child ch) | Some (`Child ch), Some (`Link l) ->
              child_bind := (l, ch) :: !child_bind
            | _ -> residual := c :: !residual
          end
          | c -> residual := c :: !residual)
        conjuncts;
      let parent_bind = List.rev !parent_bind and child_bind = List.rev !child_bind in
      if parent_bind = [] || child_bind = [] then None
      else begin
        let link_key_cols = Array.of_list (List.map fst parent_bind) in
        let child_key_cols = Array.of_list (List.map fst child_bind) in
        match
          ( Table.find_index link ~cols:link_key_cols,
            Table.find_index child.s_table ~cols:(Array.of_list (List.map snd child_bind)) )
        with
        | Some link_idx, Some child_idx ->
          ignore child_key_cols;
          let residual0 = bind_residual (List.rev !residual) in
          let scanned = ref 0 in
          Some
            ( (fun params ->
                let sub, eval_attrs, child_ok = specialize params in
                let residual = Option.map sub residual0 in
                fun parent_row emit ->
                let link_key =
                  Array.of_list (List.map (fun (_, p) -> Dict.decode parent_row.(p)) parent_bind)
                in
                if not (Array.exists Value.is_null link_key) then begin
                  let links = Table.lookup_index link link_idx link_key in
                  scanned := !scanned + List.length links;
                  let parent_dec =
                    if residual <> None || not no_attrs then Row.decode parent_row else [||]
                  in
                  List.iter
                    (fun (_, link_row) ->
                      let child_key =
                        Array.of_list (List.map (fun (l, _) -> link_row.(l)) child_bind)
                      in
                      if not (Array.exists Value.is_null child_key) then begin
                        let cands = Table.lookup_index child.s_table child_idx child_key in
                        scanned := !scanned + List.length cands;
                        List.iter
                          (fun (rowid, base_row) ->
                            if child_ok base_row then begin
                              if residual = None && no_attrs then
                                emit rowid (Row.encode base_row) empty_enc
                              else begin
                                let concat =
                                  Row.concat (Row.concat parent_dec base_row) link_row
                                in
                                let keep =
                                  match residual with
                                  | None -> true
                                  | Some p -> Value.is_true (Expr.eval_pred concat p)
                                in
                                if keep then emit rowid (Row.encode base_row) (eval_attrs concat)
                              end
                            end)
                          cands
                      end)
                    links
                end),
              scanned )
        | _ -> None
      end
    end
  end

(* ---- batch hash probing ----

   The set-oriented default when no index serves the relationship: all
   [parent.a = child.b] equality conjuncts form a composite key, a hash
   table over the child extent keyed by the child half is built once, and
   every frontier row probes it ([probe_hit]s come out exactly as for the
   indexed path). USING relationships chain two builds: parent key ->
   link rows -> child key -> child rows.

   Builds hold ENCODED base rows keyed by [Dict.key_cell]-normalized id
   arrays (one-column keys specialize to a raw-int hash table), with the
   whole bucket stored as the hash-table VALUE — a probe is one [find]
   returning the stored list, so the hot loop allocates nothing. A
   parameter-free child predicate is folded into the build (rows failing
   it are never entered); parameterized predicates and the edge's
   residual stay at probe time, so a completed build is still held in
   the compiled plan and reused by later executions (warm EXECUTE /
   plan-cache hits) as long as the source table's DML-visible
   [Table.version] still matches; DDL invalidation needs nothing extra
   because [Fetch_plan.valid] already forces recompilation. Key equality
   and hashing are [Expr.Row_key] over normalized ids — the same
   semantics the relational hash-join operator uses (Int/Float
   cross-equality via [Dict.key_cell]) — and NULL keys never match (rows
   with a NULL key component are not entered, probes with one return
   nothing). *)

type hash_entries = (int * Row.enc) list

type hash_build = {
  hb_version : int;  (** [Table.version] of the source at build time *)
  hb_tbl : hash_tbl;
}

and hash_tbl =
  | HB_single of (int, hash_entries) Hashtbl.t  (** one key column: raw normalized ids *)
  | HB_multi of hash_entries Expr.Row_key_tbl.t

type hash_source = {
  hs_table : Table.t;
  hs_key_cols : int array;
  hs_pred : Expr.t option;  (** parameter-free child predicate, folded into the build *)
  mutable hs_build : hash_build option;  (** cached across executions of the plan *)
}

let ensure_build (hs : hash_source) =
  let v = Table.version hs.hs_table in
  match hs.hs_build with
  | Some b when b.hb_version = v ->
    stats.hash_build_reuses <- stats.hash_build_reuses + 1;
    Obs.Metrics.incr m_hash_build_reuses;
    b.hb_tbl
  | _ ->
    note_query ();
    stats.hash_builds <- stats.hash_builds + 1;
    Obs.Metrics.incr m_hash_builds;
    (* pre-sized to the extent so no resize ever rehashes the whole
       build; bucket lists are stored as values (probe sets are
       frontier-sized, builds are extent-sized, so the build side is the
       one to keep lean) *)
    let keep row =
      match hs.hs_pred with None -> true | Some p -> Value.is_true (Expr.eval_pred row p)
    in
    let n = max 64 (Table.cardinality hs.hs_table) in
    let tbl =
      if Array.length hs.hs_key_cols = 1 then begin
        let kc = hs.hs_key_cols.(0) in
        let t : (int, hash_entries) Hashtbl.t = Hashtbl.create n in
        Table.iter
          (fun rowid row ->
            if keep row then begin
              let enc = Row.encode row in
              let k = Dict.key_cell enc.(kc) in
              if not (Dict.is_null k) then
                Hashtbl.replace t k
                  ((rowid, enc) :: (match Hashtbl.find_opt t k with Some l -> l | None -> []))
            end)
          hs.hs_table;
        HB_single t
      end
      else begin
        let t = Expr.Row_key_tbl.create n in
        Table.iter
          (fun rowid row ->
            if keep row then begin
              let enc = Row.encode row in
              let key = Array.map (fun i -> Dict.key_cell enc.(i)) hs.hs_key_cols in
              if not (Expr.Row_key.has_null key) then
                Expr.Row_key_tbl.replace t key
                  ((rowid, enc)
                  :: (match Expr.Row_key_tbl.find_opt t key with Some l -> l | None -> []))
            end)
          hs.hs_table;
        HB_multi t
      end
    in
    hs.hs_build <- Some { hb_version = v; hb_tbl = tbl };
    tbl

(* buckets come out most-recently-added first, i.e. reverse table order —
   hit order within one probe is not part of the contract. [find] with
   the [Not_found] match keeps the miss path allocation-free too. *)
let probe_single (t : (int, hash_entries) Hashtbl.t) k : hash_entries =
  if Dict.is_null k then []
  else match Hashtbl.find t k with exception Not_found -> [] | l -> l

let probe_multi (t : hash_entries Expr.Row_key_tbl.t) (key : Expr.Row_key.t) : hash_entries =
  if Expr.Row_key.has_null key then []
  else match Expr.Row_key_tbl.find t key with exception Not_found -> [] | l -> l

(* key extraction from an encoded row: one-column keys probe with the
   raw normalized id, composite keys refill a per-prober scratch array
   (never retained by [Hashtbl.find]), so probing allocates nothing *)
let mk_hash_probe (tbl : hash_tbl) (cols : int array) : Row.enc -> hash_entries =
  match tbl with
  | HB_single t ->
    let c = cols.(0) in
    fun row -> probe_single t (Dict.key_cell row.(c))
  | HB_multi t ->
    let scratch = Array.make (Array.length cols) 0 in
    fun row ->
      Array.iteri (fun i ci -> scratch.(i) <- Dict.key_cell row.(ci)) cols;
      probe_multi t scratch

(* fast-path delivery: emit every bucket entry, counting candidates —
   top-level so the loop closes over nothing *)
let rec emit_hits scanned (emit : emit) = function
  | [] -> ()
  | (rowid, enc) :: rest ->
    incr scanned;
    emit rowid enc empty_enc;
    emit_hits scanned emit rest

(* try to build a batch-hash prober for [ed] — same contract as
   [build_indexed_prober] (including the candidate-scan counter: bucket
   sizes before residual filtering), but resolving matches through
   version-cached hash builds instead of stored indexes, so it applies
   to any equality-joined simple child. Builds/reuses happen when the
   returned closure is applied to the EXECUTE-time [params] — once per
   fetch. *)
let build_hash_prober db (ed : Co_schema.edge_def) ~(parent_schema : Schema.t)
    ~(child : simple) : ((Value.t array -> prober) * int ref) option =
  let pa = ed.Co_schema.ed_parent_alias and ca = ed.Co_schema.ed_child_alias in
  let child_base_schema = Table.schema child.s_table in
  let conjuncts = edge_conjuncts ed in
  let bind_residual, no_attrs, specialize = prober_ctx db ed ~parent_schema ~child in
  (* a parameter-free child predicate filters at BUILD time, so probes
     skip per-candidate predicate evaluation (and the decode it needs);
     a parameterized one must stay at probe time *)
  let build_pred =
    match child.s_pred with Some p when not (Expr.has_param p) -> Some p | _ -> None
  in
  let probe_pred = if build_pred = None then child.s_pred else None in
  match ed.Co_schema.ed_using with
  | None -> begin
    (* FK form: every equality parent.a = child.b joins the key *)
    let classify (q, n) =
      if qual_is pa q then
        Option.map (fun i -> `Parent i) (Schema.find_opt parent_schema n)
      else if qual_is ca q then
        Option.map (fun i -> `Child i) (Schema.find_opt child_base_schema n)
      else None
    in
    let pairs = ref [] and residual = ref [] in
    List.iter
      (fun c ->
        match c with
        | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) -> begin
          match classify (qa, na), classify (qb, nb) with
          | Some (`Parent p), Some (`Child ch) | Some (`Child ch), Some (`Parent p) ->
            pairs := (p, ch) :: !pairs
          | _ -> residual := c :: !residual
        end
        | c -> residual := c :: !residual)
      conjuncts;
    match List.rev !pairs with
    | [] -> None
    | pairs ->
      let parent_cols = Array.of_list (List.map fst pairs) in
      let source =
        { hs_table = child.s_table; hs_key_cols = Array.of_list (List.map snd pairs);
          hs_pred = build_pred; hs_build = None }
      in
      let residual0 = bind_residual (List.rev !residual) in
      let scanned = ref 0 in
      Some
        ( (fun params ->
            let sub, eval_attrs, child_ok = specialize params in
            let child_ok = if probe_pred = None then fun _ -> true else child_ok in
            let residual = Option.map sub residual0 in
            let probe_k = mk_hash_probe (ensure_build source) parent_cols in
            if residual = None && no_attrs && probe_pred = None then
              (* fast path: nothing reads any decoded row — one hash
                 find, then emit the stored bucket as-is *)
              fun parent_row emit -> emit_hits scanned emit (probe_k parent_row)
            else
              fun parent_row emit ->
                let cands = probe_k parent_row in
                if cands <> [] then begin
                  let parent_dec =
                    if residual <> None || not no_attrs then Row.decode parent_row else [||]
                  in
                  List.iter
                    (fun (rowid, enc) ->
                      incr scanned;
                      let base_row = Row.decode enc in
                      if child_ok base_row then begin
                        if residual = None && no_attrs then emit rowid enc empty_enc
                        else begin
                          let concat = Row.concat parent_dec base_row in
                          let keep =
                            match residual with
                            | None -> true
                            | Some p -> Value.is_true (Expr.eval_pred concat p)
                          in
                          if keep then emit rowid enc (eval_attrs concat)
                        end
                      end)
                    cands
                end),
          scanned )
  end
  | Some (link_name, la) -> begin
    match Catalog.table_opt (Db.catalog db) link_name with
    | None -> err "[XNF005] relationship %s: USING table %s does not exist" ed.Co_schema.ed_name link_name
    | Some link -> begin
      let link_schema = Table.schema link in
      let la = String.lowercase_ascii la in
      let classify (q, n) =
        if qual_is pa q then Option.map (fun i -> `Parent i) (Schema.find_opt parent_schema n)
        else if qual_is ca q then
          Option.map (fun i -> `Child i) (Schema.find_opt child_base_schema n)
        else if qual_is la q then Option.map (fun i -> `Link i) (Schema.find_opt link_schema n)
        else None
      in
      let parent_bind = ref [] and child_bind = ref [] and residual = ref [] in
      List.iter
        (fun c ->
          match c with
          | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) -> begin
            match classify (qa, na), classify (qb, nb) with
            | Some (`Link l), Some (`Parent p) | Some (`Parent p), Some (`Link l) ->
              parent_bind := (l, p) :: !parent_bind
            | Some (`Link l), Some (`Child ch) | Some (`Child ch), Some (`Link l) ->
              child_bind := (l, ch) :: !child_bind
            | _ -> residual := c :: !residual
          end
          | c -> residual := c :: !residual)
        conjuncts;
      let parent_bind = List.rev !parent_bind and child_bind = List.rev !child_bind in
      if parent_bind = [] || child_bind = [] then None
      else begin
        let parent_cols = Array.of_list (List.map snd parent_bind) in
        let link_ccols = Array.of_list (List.map fst child_bind) in
        let link_source =
          { hs_table = link; hs_key_cols = Array.of_list (List.map fst parent_bind);
            hs_pred = None; hs_build = None }
        in
        let child_source =
          { hs_table = child.s_table; hs_key_cols = Array.of_list (List.map snd child_bind);
            hs_pred = build_pred; hs_build = None }
        in
        let residual0 = bind_residual (List.rev !residual) in
        let scanned = ref 0 in
        Some
          ( (fun params ->
              let sub, eval_attrs, child_ok = specialize params in
              let child_ok = if probe_pred = None then fun _ -> true else child_ok in
              let residual = Option.map sub residual0 in
              let probe_l = mk_hash_probe (ensure_build link_source) parent_cols in
              let probe_c = mk_hash_probe (ensure_build child_source) link_ccols in
              if residual = None && no_attrs && probe_pred = None then
                fun parent_row emit ->
                  let rec go = function
                    | [] -> ()
                    | (_, link_enc) :: rest ->
                      incr scanned;
                      emit_hits scanned emit (probe_c link_enc);
                      go rest
                  in
                  go (probe_l parent_row)
              else
                fun parent_row emit ->
                  let links = probe_l parent_row in
                  if links <> [] then begin
                    let parent_dec =
                      if residual <> None || not no_attrs then Row.decode parent_row else [||]
                    in
                    List.iter
                      (fun (_, link_enc) ->
                        incr scanned;
                        let cands = probe_c link_enc in
                        if cands <> [] then begin
                          let link_row =
                            if residual <> None || not no_attrs then Row.decode link_enc else [||]
                          in
                          List.iter
                            (fun (rowid, enc) ->
                              incr scanned;
                              let base_row = Row.decode enc in
                              if child_ok base_row then begin
                                if residual = None && no_attrs then emit rowid enc empty_enc
                                else begin
                                  let concat =
                                    Row.concat (Row.concat parent_dec base_row) link_row
                                  in
                                  let keep =
                                    match residual with
                                    | None -> true
                                    | Some p -> Value.is_true (Expr.eval_pred concat p)
                                  in
                                  if keep then emit rowid enc (eval_attrs concat)
                                end
                              end)
                            cands
                        end)
                      links
                  end),
            scanned )
      end
    end
  end

(* the generic join tree for an edge, over [__tid]-bearing temps *)
let edge_tree db (ed : Co_schema.edge_def) ~parent_temp ~child_temp =
  let p = Qgm.Temp { table = parent_temp; alias = ed.Co_schema.ed_parent_alias } in
  let c = Qgm.Temp { table = child_temp; alias = ed.Co_schema.ed_child_alias } in
  let j = Qgm.Join { kind = Qgm.Inner; left = p; right = c; pred = None } in
  let tree =
    match ed.Co_schema.ed_using with
    | None -> j
    | Some (table, alias) ->
      if Catalog.table_opt (Db.catalog db) table = None then
        err "[XNF005] relationship %s: USING table %s does not exist" ed.Co_schema.ed_name table;
      Qgm.Join { kind = Qgm.Inner; left = j; right = Qgm.Access { table; alias }; pred = None }
  in
  let schema = Qgm.schema_of (Db.catalog db) tree in
  let pred = Binder.bind_expr (Db.bind_env db) schema ed.Co_schema.ed_pred in
  (Qgm.Select { input = tree; pred }, schema)

let probe_edge_generic db (ed : Co_schema.edge_def) ~parent_temp ~child_temp : int list =
  let tree, schema = edge_tree db ed ~parent_temp ~child_temp in
  let c_tid = Schema.find schema ~qualifier:ed.Co_schema.ed_child_alias "__tid" in
  let qgm = Qgm.Project { input = tree; cols = [ (Expr.Col c_tid, tid_column) ] } in
  run_query db qgm |> Seq.map (fun row -> Value.as_int row.(0)) |> List.of_seq

(* fused form of the per-round generic probe: one query yields the reached
   child tids AND the connection payload (parent tid, child tid,
   relationship attributes), so no second full join is needed after the
   fixpoint *)
let probe_edge_generic_fused db (ed : Co_schema.edge_def) ~parent_temp ~child_temp :
    (int * int * Row.t) list =
  let tree, schema = edge_tree db ed ~parent_temp ~child_temp in
  let p_tid = Schema.find schema ~qualifier:ed.Co_schema.ed_parent_alias "__tid" in
  let c_tid = Schema.find schema ~qualifier:ed.Co_schema.ed_child_alias "__tid" in
  let env = Db.bind_env db in
  let attr_cols =
    List.map
      (fun (e, name) ->
        let bound = Binder.bind_expr env schema e in
        let ty = Binder.infer_ty env schema bound in
        (bound, Schema.column name ty))
      ed.Co_schema.ed_attrs
  in
  let cols = (Expr.Col p_tid, tid_column) :: (Expr.Col c_tid, tid_column) :: attr_cols in
  let qgm = Qgm.Project { input = tree; cols } in
  run_query db qgm
  |> Seq.map (fun row ->
         (Value.as_int row.(0), Value.as_int row.(1), Array.sub row 2 (Array.length row - 2)))
  |> List.of_seq

let connections_generic db (ed : Co_schema.edge_def) ~parent_temp ~child_temp :
    Schema.t * (int * int * Row.t) list =
  let tree, schema = edge_tree db ed ~parent_temp ~child_temp in
  let p_tid = Schema.find schema ~qualifier:ed.Co_schema.ed_parent_alias "__tid" in
  let c_tid = Schema.find schema ~qualifier:ed.Co_schema.ed_child_alias "__tid" in
  let env = Db.bind_env db in
  let attr_cols =
    List.map
      (fun (e, name) ->
        let bound = Binder.bind_expr env schema e in
        let ty = Binder.infer_ty env schema bound in
        (bound, Schema.column name ty))
      ed.Co_schema.ed_attrs
  in
  let cols = (Expr.Col p_tid, tid_column) :: (Expr.Col c_tid, tid_column) :: attr_cols in
  let qgm = Qgm.Project { input = tree; cols } in
  let attr_schema = Schema.make (List.map snd attr_cols) in
  let conns =
    run_query db qgm
    |> Seq.map (fun row ->
           (Value.as_int row.(0), Value.as_int row.(1), Array.sub row 2 (Array.length row - 2)))
    |> List.of_seq
  in
  (attr_schema, conns)

(* attribute output schema, shared by both probe paths *)
let attr_schema_of db (ed : Co_schema.edge_def) ~parent_schema ~child_schema =
  let pa = ed.Co_schema.ed_parent_alias and ca = ed.Co_schema.ed_child_alias in
  let base = Schema.concat (Schema.requalify pa parent_schema) (Schema.requalify ca child_schema) in
  let schema =
    match ed.Co_schema.ed_using with
    | None -> base
    | Some (t, a) -> begin
      match Catalog.table_opt (Db.catalog db) t with
      | Some link -> Schema.concat base (Schema.requalify a (Table.schema link))
      | None -> base
    end
  in
  let env = Db.bind_env db in
  Schema.make
    (List.map
       (fun (e, name) ->
         let bound = Binder.bind_expr env schema e in
         Schema.column name (Binder.infer_ty env schema bound))
       ed.Co_schema.ed_attrs)

(* ---- structural edge shapes ----

   The join structure of each relationship — which base table the child
   resolves to, which equality columns form the join key on either side,
   whether an index serves the probe today — extracted with the same
   conjunct classification the probers use. Shapes carry no closures or
   data, only names: they exist for post-compile analysis (the static
   plan advisor) which must reason about a plan without executing it. *)

type edge_shape = Edge_cost.edge_shape = {
  es_name : string;
  es_parent : string;  (** parent node name *)
  es_child : string;  (** child node name *)
  es_strategy : strategy;  (** access path selected for this plan *)
  es_child_table : string option;  (** child's base table when the child is simple *)
  es_parent_cols : string list;  (** parent-side equality join columns (node output names) *)
  es_child_cols : string list;  (** child-side equality join columns (base-table names) *)
  es_using : (string * string list) option;
      (** link table and the link-side columns the parent binds, for USING edges *)
  es_indexed : bool;  (** an index chain serves the probe as compiled *)
  es_residual : bool;  (** non-key conjuncts remain after key extraction *)
}

type node_shape = Edge_cost.node_shape = {
  ns_name : string;
  ns_table : string option;  (** base table when the derivation is simple *)
  ns_pred : Expr.t option;  (** combined simple predicate over the base row *)
  ns_query : Sql_ast.select;  (** the (composed) derivation *)
}

let col_name schema i = (Schema.col schema i).Schema.col_name

let edge_shape_of db (ed : Co_schema.edge_def) ~(parent_schema : Schema.t)
    ~(child : simple option) ~strategy : edge_shape =
  let base =
    { es_name = ed.Co_schema.ed_name; es_parent = ed.Co_schema.ed_parent;
      es_child = ed.Co_schema.ed_child; es_strategy = strategy; es_child_table = None;
      es_parent_cols = []; es_child_cols = []; es_using = None; es_indexed = false;
      es_residual = false }
  in
  match child with
  | None -> base
  | Some child -> begin
    let pa = ed.Co_schema.ed_parent_alias and ca = ed.Co_schema.ed_child_alias in
    let child_base_schema = Table.schema child.s_table in
    let conjuncts = edge_conjuncts ed in
    let base = { base with es_child_table = Some (Table.name child.s_table) } in
    match ed.Co_schema.ed_using with
    | None ->
      (* FK form: every equality parent.a = child.b joins the key (the
         hash prober's view); indexed needs one such pair with an index *)
      let classify (q, n) =
        if qual_is pa q then Option.map (fun i -> `Parent i) (Schema.find_opt parent_schema n)
        else if qual_is ca q then
          Option.map (fun i -> `Child i) (Schema.find_opt child_base_schema n)
        else None
      in
      let pairs = ref [] and residual = ref [] in
      List.iter
        (fun c ->
          match c with
          | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) -> begin
            match classify (qa, na), classify (qb, nb) with
            | Some (`Parent p), Some (`Child ch) | Some (`Child ch), Some (`Parent p) ->
              pairs := (p, ch) :: !pairs
            | _ -> residual := c :: !residual
          end
          | c -> residual := c :: !residual)
        conjuncts;
      let pairs = List.rev !pairs in
      let indexed =
        List.exists
          (fun (_, ch) -> Table.find_index child.s_table ~cols:[| ch |] <> None)
          pairs
      in
      { base with
        es_parent_cols = List.map (fun (p, _) -> col_name parent_schema p) pairs;
        es_child_cols = List.map (fun (_, ch) -> col_name child_base_schema ch) pairs;
        es_indexed = indexed;
        es_residual = !residual <> [] }
    | Some (link_name, la) -> begin
      match Catalog.table_opt (Db.catalog db) link_name with
      | None -> base
      | Some link ->
        let link_schema = Table.schema link in
        let la = String.lowercase_ascii la in
        let classify (q, n) =
          if qual_is pa q then Option.map (fun i -> `Parent i) (Schema.find_opt parent_schema n)
          else if qual_is ca q then
            Option.map (fun i -> `Child i) (Schema.find_opt child_base_schema n)
          else if qual_is la q then Option.map (fun i -> `Link i) (Schema.find_opt link_schema n)
          else None
        in
        let parent_bind = ref [] and child_bind = ref [] and residual = ref [] in
        List.iter
          (fun c ->
            match c with
            | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) -> begin
              match classify (qa, na), classify (qb, nb) with
              | Some (`Link l), Some (`Parent p) | Some (`Parent p), Some (`Link l) ->
                parent_bind := (l, p) :: !parent_bind
              | Some (`Link l), Some (`Child ch) | Some (`Child ch), Some (`Link l) ->
                child_bind := (l, ch) :: !child_bind
              | _ -> residual := c :: !residual
            end
            | c -> residual := c :: !residual)
          conjuncts;
        let parent_bind = List.rev !parent_bind and child_bind = List.rev !child_bind in
        let indexed =
          parent_bind <> [] && child_bind <> []
          && Table.find_index link ~cols:(Array.of_list (List.map fst parent_bind)) <> None
          && Table.find_index child.s_table ~cols:(Array.of_list (List.map snd child_bind))
             <> None
        in
        { base with
          es_parent_cols = List.map (fun (_, p) -> col_name parent_schema p) parent_bind;
          es_child_cols = List.map (fun (_, ch) -> col_name child_base_schema ch) child_bind;
          es_using =
            Some (Table.name link, List.map (fun (l, _) -> col_name link_schema l) parent_bind);
          es_indexed = indexed;
          es_residual = !residual <> [] }
    end
  end

(* base tables a SELECT depends on (for staleness tracking) *)
let rec tables_of_select catalog (q : Sql_ast.select) : string list =
  let rec of_ref = function
    | Sql_ast.From_table (t, _) ->
      if Catalog.table_opt catalog t <> None then [ String.lowercase_ascii t ]
      else begin
        match Catalog.view_opt catalog t with
        | Some v -> tables_of_select catalog v.Catalog.view_query
        | None -> []
      end
    | Sql_ast.From_select (inner, _) -> tables_of_select catalog inner
    | Sql_ast.From_join (l, _, r, _) -> of_ref l @ of_ref r
  in
  List.concat_map of_ref q.Sql_ast.sel_from

(* ---- TAKE: structural projection of the evaluated instance ----

   Projection is evaluate-then-project: the full CO (with reachability) is
   computed first, then components are dropped from the output and node
   columns projected — which is what makes a restriction on a
   projected-away component meaningful (type-(3) XNF-to-NF queries). *)

let apply_column_projection cache =
  List.iter
    (fun (name, ni) ->
      let nd = Co_schema.node cache.Cache.c_def name in
      match nd.Co_schema.nd_cols with
      | None -> ()
      | Some cols ->
        let positions =
          List.map
            (fun c ->
              match Schema.find_opt ni.Cache.ni_schema c with
              | Some i -> i
              | None -> err "[XNF007] TAKE projects unknown column %s of %s" c name)
            cols
        in
        let idx = Array.of_list positions in
        ni.Cache.ni_schema <-
          Schema.make (List.map (fun i -> Schema.col ni.Cache.ni_schema i) positions);
        Vec.iter (fun t -> t.Cache.t_row <- Row.project_enc t.Cache.t_row idx) ni.Cache.ni_tuples;
        ni.Cache.ni_upd <-
          Option.map
            (fun (u : Semantic.node_updatability) ->
              { u with Semantic.nu_col_map = Array.map (fun i -> u.Semantic.nu_col_map.(i)) idx })
            ni.Cache.ni_upd)
    cache.Cache.c_nodes

let apply_take cache (take : Xnf_ast.take) : Cache.t =
  match take with
  | Xnf_ast.Take_star -> cache
  | Xnf_ast.Take_items _ ->
    let def' = Co_schema.project cache.Cache.c_def take in
    let keep_node n = Co_schema.node_opt def' n <> None in
    let keep_edge e = Co_schema.edge_opt def' e <> None in
    { cache with
      Cache.c_def = def';
      c_nodes = List.filter (fun (n, _) -> keep_node n) cache.Cache.c_nodes;
      c_edges = List.filter (fun (e, _) -> keep_edge e) cache.Cache.c_edges }

(* ---- compiled fetch plans: compile once, execute per fetch ----

   [compile_def] performs the input-independent half of translation: node
   shape analysis (simple vs. generic), output schemas, updatability
   analysis and per-edge access-path selection. The result is immutable
   and reusable; [execute_def] instantiates fresh runtime state from it
   per fetch, substituting EXECUTE-time parameter values. *)

type node_plan = {
  np_def : Co_schema.node_def;
  np_simple : simple option;
  np_schema : Schema.t;
  np_upd : Semantic.node_updatability option;
}

(* one compiled access path: relationship-attribute schema, parameterized
   prober (its closure owns any version-cached hash builds), and the
   cumulative candidate-rows-scanned counter its probes maintain *)
type built_prober = {
  bp_schema : Schema.t;
  bp_fn : Value.t array -> prober;
  bp_scanned : int ref;
}

(* every access path the edge can be served by, compiled up front: the
   plan picks one, the adaptive runtime check may instate an alternate
   mid-fixpoint. Unbuilt probers cost nothing until specialized. *)
type edge_candidates = {
  ec_indexed : built_prober option;
  ec_hash : built_prober option;
  ec_generic_schema : Schema.t;  (** the always-applicable fallback *)
}

type edge_plan = {
  ep_chosen : strategy;  (** compile-time pick (cost-based or static) *)
  ep_cands : edge_candidates;
}

(** One adaptive mid-fixpoint strategy switch, recorded on the plan. *)
type switch_rec = {
  sw_edge : string;
  sw_from : strategy;
  sw_to : strategy;
  sw_round : int;  (** fixpoint round (1-based, per execution) after which it applied *)
}

(* final updatability analysis of one edge against the post-TAKE schemas —
   a pure function of the plan, so computed once at compile time *)
type edge_final = {
  ef_upd : Semantic.edge_updatability;
  ef_pcols : int list;
  ef_ccols : int list;
}

type compiled = {
  cp_def : Co_schema.t;
  cp_nodes : (string * node_plan) list;
  cp_edges : (string * edge_plan) list;
  cp_shapes : edge_shape list;  (** structural join shape per edge, definition order *)
  cp_force : strategy option;  (** the [?force] pin the plan was compiled under *)
  cp_base_tables : string list;  (** staleness-tracked base tables *)
  cp_final : (string * edge_final) list;  (** per edge surviving the plan's TAKE *)
  cp_ests : (string * Edge_cost.edge_est) list;
      (** per-edge cost inputs, nonempty iff the pick was cost-based *)
  cp_cost_based : bool;  (** selection came from the shared cost model (fresh stats) *)
  mutable cp_switches : switch_rec list;
      (** adaptive switches, latest first, at most one per edge; written by
          executions so a plan-cache hit starts from the learned strategy *)
  mutable cp_hints : (string * int) list;
      (** last observed cardinalities ("n:<node>" tuples, "e:<edge>"
          connections) — warm executions presize the cache structures so
          the hot loop allocates no growth-doubling garbage *)
}

(** [compile_def ?take ?force db def] runs the "translate" phase on a
    composed CO definition: analysis and access-path selection, no data
    access. [take] lets the final (post-projection) updatability analysis
    be precomputed too; it defaults to [TAKE *]. [force] restricts
    access-path selection to one strategy (used by the differential fuzz
    oracle and the per-strategy bench); an edge the forced strategy cannot
    serve falls back to the always-applicable generic path. *)
let compile_def ?(take = Xnf_ast.Take_star) ?force db (def : Co_schema.t) : compiled =
  let catalog = Db.catalog db in
  Obs.Trace.with_span "translate" @@ fun () ->
  let nodes =
    List.map
      (fun nd ->
        let simple = analyze_simple db nd.Co_schema.nd_query in
        let schema = node_schema db nd ~simple in
        let upd = Semantic.analyze_node_query catalog nd.Co_schema.nd_query in
        ( nd.Co_schema.nd_name,
          { np_def = nd; np_simple = Option.map fst simple; np_schema = schema; np_upd = upd } ))
      def.Co_schema.co_nodes
  in
  let node name = List.assoc name nodes in
  let base_tables =
    List.concat_map (fun nd -> tables_of_select catalog nd.Co_schema.nd_query) def.Co_schema.co_nodes
    @ List.filter_map
        (fun (ed : Co_schema.edge_def) ->
          Option.map (fun (t, _) -> String.lowercase_ascii t) ed.Co_schema.ed_using)
        def.Co_schema.co_edges
    |> List.sort_uniq compare
  in
  (* every servable access path per edge, compiled up front (a probe path
     over base rows needs a simple child; generic always applies) *)
  let cand_edges =
    List.map
      (fun (ed : Co_schema.edge_def) ->
        let parent = node ed.Co_schema.ed_parent and child = node ed.Co_schema.ed_child in
        let try_prober build =
          match child.np_simple with
          | None -> None
          | Some c ->
            Option.map
              (fun (f, scanned) ->
                let attr_schema =
                  attr_schema_of db ed ~parent_schema:parent.np_schema
                    ~child_schema:(Table.schema c.s_table)
                in
                { bp_schema = attr_schema; bp_fn = f; bp_scanned = scanned })
              (build db ed ~parent_schema:parent.np_schema ~child:c)
        in
        let cands =
          { ec_indexed = try_prober build_indexed_prober;
            ec_hash = try_prober build_hash_prober;
            ec_generic_schema =
              attr_schema_of db ed ~parent_schema:parent.np_schema
                ~child_schema:child.np_schema }
        in
        let shape =
          edge_shape_of db ed ~parent_schema:parent.np_schema ~child:child.np_simple
            ~strategy:S_generic
        in
        (ed, cands, shape))
      def.Co_schema.co_edges
  in
  (* the strategies the compiled closures can actually serve, in static
     selection-priority order (indexed > batch hash > generic) *)
  let servable cands =
    (if cands.ec_indexed <> None then [ S_indexed ] else [])
    @ (if cands.ec_hash <> None then [ S_hash ] else [])
    @ [ S_generic ]
  in
  (* cost-based pick: only unforced and with a fresh ANALYZE snapshot for
     every base table the plan reads — stale or missing stats fall back
     to the static priority rules, [?force] always wins *)
  let ctx = Edge_cost.mk_ctx db in
  let cost_based =
    force = None && base_tables <> []
    && List.for_all (fun t -> Edge_cost.health ctx t = `Fresh) base_tables
  in
  let ests =
    if not cost_based then []
    else begin
      let shape_nodes =
        List.map
          (fun (name, np) ->
            { ns_name = name;
              ns_table = Option.map (fun s -> Table.name s.s_table) np.np_simple;
              ns_pred = Option.bind np.np_simple (fun s -> s.s_pred);
              ns_query = np.np_def.Co_schema.nd_query })
          nodes
      in
      let _, ests =
        Edge_cost.annotate ctx ~nodes:shape_nodes ~shapes:(List.map (fun (_, _, s) -> s) cand_edges)
      in
      List.map (fun (ee : Edge_cost.edge_est) -> (ee.Edge_cost.ee_edge, ee)) ests
    end
  in
  let edges =
    List.map
      (fun ((ed : Co_schema.edge_def), cands, shape0) ->
        let avail = servable cands in
        let chosen =
          match force with
          | Some f -> if List.mem f avail then f else S_generic
          | None -> begin
            match List.assoc_opt ed.Co_schema.ed_name ests with
            | Some ee ->
              stats.cost_picks <- stats.cost_picks + 1;
              Obs.Metrics.incr m_cost_picks;
              fst
                (Edge_cost.best ee ~candidates:avail ~frontier:ee.Edge_cost.ee_frontier
                   ~conns:ee.Edge_cost.ee_conns)
            | None -> List.hd avail
          end
        in
        (match chosen with
        | S_indexed ->
          stats.indexed_probes <- stats.indexed_probes + 1;
          Obs.Metrics.incr m_indexed_probes
        | S_hash ->
          stats.hash_edges <- stats.hash_edges + 1;
          Obs.Metrics.incr m_hash_edges
        | S_generic ->
          stats.generic_probes <- stats.generic_probes + 1;
          Obs.Metrics.incr m_generic_probes);
        ( (ed.Co_schema.ed_name, { ep_chosen = chosen; ep_cands = cands }),
          { shape0 with es_strategy = chosen } ))
      cand_edges
  in
  let shapes = List.map snd edges in
  let edges = List.map fst edges in
  (* final updatability analysis against the post-TAKE node schemas — the
     schemas are plan-determined, so the per-edge analysis is too *)
  let final_def =
    match take with Xnf_ast.Take_star -> def | Xnf_ast.Take_items _ -> Co_schema.project def take
  in
  let final_schema nd_name =
    let nd = Co_schema.node final_def nd_name in
    let schema = (node nd_name).np_schema in
    match nd.Co_schema.nd_cols with
    | None -> schema
    | Some cols ->
      Schema.make
        (List.map
           (fun c ->
             match Schema.find_opt schema c with
             | Some i -> Schema.col schema i
             | None -> err "[XNF007] TAKE projects unknown column %s of %s" c nd_name)
           cols)
  in
  let final =
    List.map
      (fun (ed : Co_schema.edge_def) ->
        let parent_schema = final_schema ed.Co_schema.ed_parent
        and child_schema = final_schema ed.Co_schema.ed_child in
        let upd = Semantic.analyze_edge catalog ed ~parent_schema ~child_schema in
        let pcols, ccols = Semantic.relationship_columns ed ~parent_schema ~child_schema in
        (ed.Co_schema.ed_name, { ef_upd = upd; ef_pcols = pcols; ef_ccols = ccols }))
      final_def.Co_schema.co_edges
  in
  { cp_def = def; cp_nodes = nodes; cp_edges = edges; cp_shapes = shapes; cp_force = force;
    cp_base_tables = base_tables; cp_final = final; cp_ests = ests; cp_cost_based = cost_based;
    cp_switches = []; cp_hints = [] }

(** [edge_strategies cp] lists the access path selected for each
    relationship, in definition order — surfaced by [EXPLAIN ANALYZE] and
    [\plans]. *)
let edge_strategies (cp : compiled) : (string * strategy) list =
  List.map (fun (name, ep) -> (name, ep.ep_chosen)) cp.cp_edges

(** [effective_strategies cp] is {!edge_strategies} with the adaptive
    switches recorded by the most recent execution applied — the paths
    the next execution of this plan will start from. *)
let effective_strategies (cp : compiled) : (string * strategy) list =
  List.map
    (fun (name, ep) ->
      match List.find_opt (fun sw -> sw.sw_edge = name) cp.cp_switches with
      | Some sw -> (name, sw.sw_to)
      | None -> (name, ep.ep_chosen))
    cp.cp_edges

(** [switches cp] lists the adaptive strategy switches recorded on the
    plan, oldest first (at most one per edge — latest execution wins). *)
let switches (cp : compiled) : switch_rec list = List.rev cp.cp_switches

(** [cost_based cp] is true when per-edge selection came from the shared
    cost model (fresh stats, no [?force]). *)
let cost_based (cp : compiled) : bool = cp.cp_cost_based

(** [edge_shapes cp] is the structural join shape per relationship, in
    definition order — consumed by the static plan advisor. *)
let edge_shapes (cp : compiled) : edge_shape list = cp.cp_shapes

(** [node_shapes cp] is the derivation shape per node, in definition
    order. *)
let node_shapes (cp : compiled) : node_shape list =
  List.map
    (fun (name, np) ->
      { ns_name = name;
        ns_table = Option.map (fun s -> Table.name s.s_table) np.np_simple;
        ns_pred = Option.bind np.np_simple (fun s -> s.s_pred);
        ns_query = np.np_def.Co_schema.nd_query })
    cp.cp_nodes

(** [forced cp] is the [?force] pin the plan was compiled under. *)
let forced (cp : compiled) : strategy option = cp.cp_force

(** [compiled_def cp] is the composed definition the plan was compiled
    from. *)
let compiled_def (cp : compiled) : Co_schema.t = cp.cp_def

(** [base_tables cp] is the staleness-tracked base-table set. *)
let base_tables (cp : compiled) : string list = cp.cp_base_tables

(* per-edge adaptive runtime state for one execution: which strategy is
   serving, its specialized prober (None = generic path), and the observed
   frontier/connection/candidate-scan counters the between-rounds check
   compares against the plan's estimates *)
type edge_rt = {
  er_name : string;
  er_plan : edge_plan;
  mutable er_serving : strategy;
  mutable er_probe : prober option;
  mutable er_bp : built_prober option;  (** serving prober's compile-time record *)
  mutable er_scan_base : int;  (** [bp_scanned] when the serving prober was instated *)
  mutable er_probed : int;  (** frontier rows fed to this edge so far *)
  mutable er_conns : int;  (** connections produced so far *)
  mutable er_switched : bool;  (** divergence handled — at most one switch per execution *)
}

(* substitute EXECUTE-time values into the symbolic (instance-evaluated)
   restrictions *)
let subst_restrictions params restrs =
  if Array.length params = 0 then restrs
  else
    List.map
      (function
        | R_node r -> R_node { r with rn_pred = Xnf_ast.subst_params_xexpr params r.rn_pred }
        | R_edge r -> R_edge { r with re_pred = Xnf_ast.subst_params_xexpr params r.re_pred })
      restrs

(** [execute_def ?fixpoint ?params db cp path_restrs] evaluates a compiled
    plan into a cache (before TAKE projection and final updatability
    analysis), substituting [params] for the [?] slots. *)
let execute_def ?(fixpoint = Semi_naive) ?(params = [||]) db (cp : compiled)
    (path_restrs : restriction list) : Cache.t =
  let catalog = Db.catalog db in
  let def = cp.cp_def in
  let sub_select q = if Array.length params = 0 then q else Sql_ast.subst_params_select params q in
  let sub_expr e = if Array.length params = 0 then e else Sql_ast.subst_params_expr params e in
  let sub_pred p = if Array.length params = 0 then p else Option.map (Expr.subst_params params) p in
  let path_restrs = subst_restrictions params path_restrs in
  (* fresh per-fetch runtime state from the immutable plan; warm
     re-executions presize from the previous run's cardinalities so the
     hot loop pays no growth-doubling churn *)
  let hint key fallback =
    match List.assoc_opt key cp.cp_hints with
    | Some n when n > 0 -> n + n / 8
    | _ -> fallback
  in
  let nodes_rt =
    List.map
      (fun (name, np) ->
        let nd =
          { np.np_def with Co_schema.nd_query = sub_select np.np_def.Co_schema.nd_query }
        in
        let simple = Option.map (fun s -> { s with s_pred = sub_pred s.s_pred }) np.np_simple in
        let h = hint ("n:" ^ name) 64 in
        let ni = Cache.make_node ~size_hint:h ~schema:np.np_schema ~upd:np.np_upd name in
        ( name,
          { nr_def = nd; nr_simple = simple; nr_ni = ni; nr_extent = None; nr_temp = None;
            nr_tid2pos = Intmap.create ~size:16; nr_mark = 0; nr_limit = 0 } ))
      cp.cp_nodes
  in
  let rt name = List.assoc name nodes_rt in
  (* generic probe paths re-bind edge predicates at run time, so they need
     the substituted AST forms *)
  let edge_defs =
    List.map
      (fun (ed : Co_schema.edge_def) ->
        { ed with
          Co_schema.ed_pred = sub_expr ed.Co_schema.ed_pred;
          ed_attrs = List.map (fun (e, n) -> (sub_expr e, n)) ed.Co_schema.ed_attrs })
      def.Co_schema.co_edges
  in
  (* under the semi-naive fixpoint every live parent position is probed
     exactly once per edge, so connection production fuses into the
     reachability pass (per-edge accumulators read out afterwards). The
     naive ablation re-probes parents every round and keeps the legacy
     two-phase shape. *)
  let fused = fixpoint = Semi_naive in
  (* fused connection production fills the cache's struct-of-arrays
     buffers directly — two int pushes per match, attribute rows only on
     edges that declare them; the readout adopts the buffers wholesale *)
  let conn_bufs : (string * Cache.conns) list =
    List.map
      (fun (ed : Co_schema.edge_def) ->
        ( ed.Co_schema.ed_name,
          Cache.make_conns
            ~size_hint:(hint ("e:" ^ ed.Co_schema.ed_name) 8)
            ~attrs:(ed.Co_schema.ed_attrs <> []) () ))
      def.Co_schema.co_edges
  in
  let buf_of name = List.assoc name conn_bufs in
  (* phase allocation accounting, env-gated; [Gc.minor] drains the minor
     heap so [Gc.allocated_bytes] is exact, not quantized *)
  let dbg_alloc = Sys.getenv_opt "XNF_ALLOC_DEBUG" <> None in
  let dbg_mark = ref (if dbg_alloc then (Gc.minor (); Gc.allocated_bytes ()) else 0.) in
  let dbg phase =
    if dbg_alloc then begin
      Gc.minor ();
      let now = Gc.allocated_bytes () in
      Printf.eprintf "[alloc] %-12s %10.0f bytes\n%!" phase (now -. !dbg_mark);
      dbg_mark := now
    end
  in
  (* 3–5 run under the "cache-fill" span: roots, reachability fixpoint,
     connection extents *)
  let edges =
    Obs.Trace.with_span "cache-fill" @@ fun () ->
  (* binding the parameter slots into the probers; batch-hash edges
     (re)build or reuse their version-cached hash tables here, once per
     fetch *)
  let set_serving er s =
    er.er_serving <- s;
    let bp =
      match s with
      | S_indexed -> er.er_plan.ep_cands.ec_indexed
      | S_hash -> er.er_plan.ep_cands.ec_hash
      | S_generic -> None
    in
    er.er_bp <- bp;
    match bp with
    | Some bp ->
      er.er_probe <- Some (bp.bp_fn params);
      er.er_scan_base <- !(bp.bp_scanned)
    | None -> er.er_probe <- None
  in
  let edge_rts =
    Obs.Trace.with_span "edge-builds" @@ fun () ->
    List.map
      (fun (name, ep) ->
        (* serving starts from the plan's latest recorded switch, so a
           plan-cache hit keeps the strategy a previous execution learned *)
        let serving =
          match List.find_opt (fun sw -> sw.sw_edge = name) cp.cp_switches with
          | Some sw -> sw.sw_to
          | None -> ep.ep_chosen
        in
        let er =
          { er_name = name; er_plan = ep; er_serving = serving; er_probe = None; er_bp = None;
            er_scan_base = 0; er_probed = 0; er_conns = 0; er_switched = false }
        in
        set_serving er serving;
        (name, er))
      cp.cp_edges
  in
  let rt_edge name = List.assoc name edge_rts in
  (* 3. roots: set-oriented evaluation of the derivations *)
  dbg "setup";
  Obs.Trace.with_span "roots" (fun () ->
      List.iter
        (fun (nd : Co_schema.node_def) ->
          Obs.Trace.with_span ("node:" ^ nd.Co_schema.nd_name) @@ fun () ->
          let r = rt nd.Co_schema.nd_name in
          note_query ();
          (match r.nr_simple with
          | Some s ->
            Table.iter
              (fun rowid row ->
                let keep =
                  match s.s_pred with None -> true | Some p -> Value.is_true (Expr.eval_pred row p)
                in
                if keep then
                  ignore (Cache.add_tuple r.nr_ni ~rowid (Row.encode (Row.project row s.s_proj))))
              s.s_table
          | None ->
            let x = ensure_extent db r in
            Array.iteri
              (fun tid row ->
                let pos = Cache.add_tuple r.nr_ni ~rowid:x.x_rowids.(tid) row in
                Intmap.set r.nr_tid2pos tid pos)
              x.x_rows);
          Obs.Trace.add_meta "rows" (string_of_int (Cache.live_count r.nr_ni)))
        (Co_schema.roots def));
  dbg "roots";
  (* 4. reachability: semi-naive (or naive) fixpoint *)
  (* prober hits deliver the child's encoded BASE row; project to the
     node's output columns only when the tuple is first materialized. An
     identity projection shares the build's row array with the cache
     tuple — safe, because in-cache rows are never mutated in place
     ([Udi] copies before writing, TAKE replaces the array). *)
  let child_proj child_rt =
    match child_rt.nr_simple with
    | Some s ->
      let n = Array.length s.s_proj in
      let identity =
        n = Schema.arity (Table.schema s.s_table)
        &&
        let rec all_id i = i >= n || (s.s_proj.(i) = i && all_id (i + 1)) in
        all_id 0
      in
      if identity then fun (enc : Row.enc) -> enc else fun enc -> Row.project_enc enc s.s_proj
    | None -> fun enc -> enc
  in
  let add_child child_rt proj rowid enc =
    let pos = Cache.pos_of_rowid child_rt.nr_ni rowid in
    if pos >= 0 then (pos, false)
    else (Cache.add_tuple child_rt.nr_ni ~rowid (proj enc), true)
  in
  let changed = ref true in
  (* ---- adaptive mid-fixpoint fallback ----

     After each semi-naive round with more work pending, compare the
     observed frontier / connection / candidate-scan counters per edge
     against the plan's estimates. Beyond [adaptive_factor] divergence
     (with at least [adaptive_min_rows] observed rows), re-cost the
     candidates through the shared model with observed counts — live
     cardinalities replace the evidently-unreliable snapshot extents —
     and switch the edge's serving strategy for subsequent rounds. The
     switch is recorded on the plan (EXPLAIN ANALYZE, sys.plans) and
     reused by plan-cache hits; at most one switch per edge per
     execution, so estimates can never cause flapping. Only cost-picked,
     unforced plans are eligible. *)
  let live_card t =
    match Catalog.table_opt catalog t with
    | Some tbl -> float_of_int (Table.cardinality tbl)
    | None -> infinity
  in
  let adaptive_check round =
    List.iter
      (fun (name, er) ->
        match List.assoc_opt name cp.cp_ests with
        | None -> ()
        | Some ee ->
          if not er.er_switched then begin
            let fmin = float_of_int (adaptive_min_rows ()) in
            let factor = adaptive_factor () in
            let f = float_of_int er.er_probed in
            let c = float_of_int er.er_conns in
            let scan =
              match er.er_bp with
              | Some bp -> float_of_int (!(bp.bp_scanned) - er.er_scan_base)
              | None -> 0.
            in
            let est_scan =
              match er.er_serving with
              | S_indexed -> f *. Float.max 1. ee.Edge_cost.ee_cand_fan
              | S_hash -> f *. Float.max 1. ee.Edge_cost.ee_fanout
              | S_generic -> 0.
            in
            let exceeds obs est = obs >= fmin && obs > factor *. Float.max 1. est in
            if
              exceeds f ee.Edge_cost.ee_frontier
              || exceeds c ee.Edge_cost.ee_conns
              || (er.er_serving <> S_generic && exceeds scan est_scan)
            then begin
              er.er_switched <- true;
              let shape = List.find (fun s -> s.es_name = name) cp.cp_shapes in
              let live_child =
                match shape.es_child_table with None -> infinity | Some t -> live_card t
              in
              let live_build =
                match shape.es_using with
                | Some (l, _) -> live_child +. live_card l
                | None -> live_child
              in
              let cost = function
                | S_indexed ->
                  if er.er_plan.ep_cands.ec_indexed = None then infinity
                  else if er.er_serving = S_indexed then f +. Float.max c scan
                  else f +. Float.max (f *. Float.max 1. ee.Edge_cost.ee_cand_fan) c
                | S_hash ->
                  if er.er_plan.ep_cands.ec_hash = None then infinity
                  else live_build +. f +. c
                | S_generic -> f *. Float.max 1. live_child
              in
              let target, _ =
                List.fold_left
                  (fun (bs, bc) s ->
                    let cs = cost s in
                    if cs < bc then (s, cs) else (bs, bc))
                  (S_indexed, cost S_indexed)
                  [ S_hash; S_generic ]
              in
              if target <> er.er_serving then begin
                let sw =
                  { sw_edge = name; sw_from = er.er_serving; sw_to = target; sw_round = round }
                in
                cp.cp_switches <-
                  sw :: List.filter (fun s -> s.sw_edge <> name) cp.cp_switches;
                stats.strategy_switches <- stats.strategy_switches + 1;
                Obs.Metrics.incr m_strategy_switches;
                set_serving er target
              end
            end
          end)
      edge_rts
  in
  let round = ref 0 in
  let run_fixpoint () =
  while !changed do
    changed := false;
    incr round;
    stats.fixpoint_rounds <- stats.fixpoint_rounds + 1;
    Obs.Metrics.incr m_rounds;
    (* snapshot this round's slice per node; tuples created during the
       round land beyond [nr_limit] and become the next round's slice *)
    List.iter
      (fun (_, r) ->
        r.nr_mark <- r.nr_limit;
        r.nr_limit <- Vec.length r.nr_ni.Cache.ni_tuples)
      nodes_rt;
    List.iter
      (fun (ed : Co_schema.edge_def) ->
        let parent_rt = rt ed.Co_schema.ed_parent and child_rt = rt ed.Co_schema.ed_child in
        (* naive ablation: re-probe every live parent each round through
           the legacy list-shaped path *)
        let naive_set =
          match fixpoint with
          | Semi_naive -> []
          | Naive ->
            List.filter_map
              (fun t -> if t.Cache.t_live then Some t.Cache.t_pos else None)
              (List.of_seq (Vec.to_seq parent_rt.nr_ni.Cache.ni_tuples))
        in
        let n_probes =
          match fixpoint with
          | Semi_naive -> parent_rt.nr_limit - parent_rt.nr_mark
          | Naive -> List.length naive_set
        in
        if n_probes > 0 then begin
          stats.tuples_probed <- stats.tuples_probed + n_probes;
          Obs.Metrics.incr ~by:n_probes m_tuples_probed;
          let er = rt_edge ed.Co_schema.ed_name in
          er.er_probed <- er.er_probed + n_probes;
          let iter_probe_set f =
            match fixpoint with
            | Semi_naive ->
              for pos = parent_rt.nr_mark to parent_rt.nr_limit - 1 do
                f pos
              done
            | Naive -> List.iter f naive_set
          in
          let probe_batch probe =
            note_query ();
            let buf = buf_of ed.Co_schema.ed_name in
            let proj = child_proj child_rt in
            (* one emit closure per batch (not per frontier row): the
               current parent position threads through a mutable cell *)
            let cur = ref 0 in
            let on_hit rowid enc attrs =
              let cpos, is_new = add_child child_rt proj rowid enc in
              if fused then begin
                ignore (Cache.push_conn buf ~parent:!cur ~child:cpos ~attrs);
                er.er_conns <- er.er_conns + 1
              end;
              if is_new then changed := true
            in
            iter_probe_set (fun pos ->
                cur := pos;
                probe (Cache.tuple parent_rt.nr_ni pos).Cache.t_row on_hit)
          in
          match er.er_probe with
          | Some probe ->
            if er.er_serving = S_hash then begin
              stats.hash_probes <- stats.hash_probes + 1;
              Obs.Metrics.incr m_hash_probes
            end;
            probe_batch probe
          | None ->
            let child_temp = ensure_temp db child_rt in
            let probe_rows =
              let acc = ref [] in
              iter_probe_set (fun pos ->
                  acc := (pos, (Cache.tuple parent_rt.nr_ni pos).Cache.t_row) :: !acc);
              List.rev !acc
            in
            let parent_temp = make_temp parent_rt.nr_ni.Cache.ni_schema (List.to_seq probe_rows) in
            let x () = Option.get child_rt.nr_extent in
            (* child position for an extent tid, creating the tuple on
               first reach; dedupes by rowid too, in case another
               (indexed/hash) edge already delivered this base row *)
            let pos_of_tid tid =
              let known = Intmap.get child_rt.nr_tid2pos tid in
              if known >= 0 then known
              else begin
                let x = x () in
                let rid = x.x_rowids.(tid) in
                let by_rowid = if rid >= 0 then Cache.pos_of_rowid child_rt.nr_ni rid else -1 in
                let pos =
                  if by_rowid >= 0 then by_rowid
                  else begin
                    let pos = Cache.add_tuple child_rt.nr_ni ~rowid:rid x.x_rows.(tid) in
                    changed := true;
                    pos
                  end
                in
                Intmap.set child_rt.nr_tid2pos tid pos;
                pos
              end
            in
            if fused then begin
              let buf = buf_of ed.Co_schema.ed_name in
              List.iter
                (fun (ppos, tid, attrs) ->
                  ignore
                    (Cache.push_conn buf ~parent:ppos ~child:(pos_of_tid tid)
                       ~attrs:(Row.encode attrs));
                  er.er_conns <- er.er_conns + 1)
                (probe_edge_generic_fused db ed ~parent_temp ~child_temp)
            end
            else
              List.iter
                (fun tid -> ignore (pos_of_tid tid))
                (probe_edge_generic db ed ~parent_temp ~child_temp)
        end)
      edge_defs;
    if fused && !changed && adaptive_enabled () && cp.cp_force = None && cp.cp_ests <> [] then
      adaptive_check !round
  done
  in
  Obs.Trace.with_span "fixpoint" (fun () ->
      let round0 = stats.fixpoint_rounds in
      run_fixpoint ();
      Obs.Trace.add_meta "rounds" (string_of_int (stats.fixpoint_rounds - round0)));
  dbg "fixpoint";
  (* 5. connection extents over the reached instance. Under the
     semi-naive fixpoint the matches were already produced during
     reachability — this is a readout of the per-edge accumulators, no
     further query runs. The naive ablation recomputes them from the full
     reached sets (its fixpoint probes parents repeatedly, so accumulation
     would duplicate). *)
  let edges =
    Obs.Trace.with_span "connections" @@ fun () ->
    List.map
      (fun (ed : Co_schema.edge_def) ->
        Obs.Trace.with_span ("edge:" ^ ed.Co_schema.ed_name) @@ fun () ->
        let parent_rt = rt ed.Co_schema.ed_parent and child_rt = rt ed.Co_schema.ed_child in
        (* adopt the buffer wholesale as the edge's connection store —
           zero-copy; the fused fixpoint filled it in delivery order *)
        let ei_of attr_schema (cs : Cache.conns) =
          let ei =
            { Cache.ei_name = ed.Co_schema.ed_name; ei_parent = ed.Co_schema.ed_parent;
              ei_child = ed.Co_schema.ed_child; ei_parent_node = parent_rt.nr_ni;
              ei_child_node = child_rt.nr_ni; ei_attr_schema = attr_schema; ei_conns = cs;
              ei_adj = None; ei_upd = Semantic.Upd_readonly "pending analysis" }
          in
          Obs.Trace.add_meta "conns" (string_of_int cs.Cache.cs_len);
          (ed.Co_schema.ed_name, ei)
        in
        let er = rt_edge ed.Co_schema.ed_name in
        let attr_schema =
          match er.er_bp with
          | Some bp -> bp.bp_schema
          | None -> er.er_plan.ep_cands.ec_generic_schema
        in
        if fused then ei_of attr_schema (buf_of ed.Co_schema.ed_name)
        else begin
          let has_attrs = ed.Co_schema.ed_attrs <> [] in
          match er.er_probe with
          | Some probe ->
            note_query ();
            let cs = Cache.make_conns ~attrs:has_attrs () in
            Vec.iter
              (fun t ->
                if t.Cache.t_live then
                  probe t.Cache.t_row (fun rowid _enc attrs ->
                      let child_pos = Cache.pos_of_rowid child_rt.nr_ni rowid in
                      if child_pos >= 0 then
                        ignore (Cache.push_conn cs ~parent:t.Cache.t_pos ~child:child_pos ~attrs)))
              parent_rt.nr_ni.Cache.ni_tuples;
            ei_of attr_schema cs
          | None ->
            let temp_of rt_ =
              make_temp rt_.nr_ni.Cache.ni_schema
                (Vec.to_seq rt_.nr_ni.Cache.ni_tuples
                |> Seq.filter (fun t -> t.Cache.t_live)
                |> Seq.map (fun t -> (t.Cache.t_pos, t.Cache.t_row)))
            in
            let attr_schema, conns =
              connections_generic db ed ~parent_temp:(temp_of parent_rt)
                ~child_temp:(temp_of child_rt)
            in
            let cs = Cache.make_conns ~attrs:has_attrs () in
            List.iter
              (fun (p, c, a) -> ignore (Cache.push_conn cs ~parent:p ~child:c ~attrs:(Row.encode a)))
              conns;
            ei_of attr_schema cs
        end)
      edge_defs
  in
  dbg "connections";
  edges
  in
  (* 6. staleness bookkeeping (table set precomputed at compile time) *)
  let base_tables = cp.cp_base_tables in
  let cache =
    { Cache.c_def = def; c_nodes = List.map (fun (n, r) -> (n, r.nr_ni)) nodes_rt; c_edges = edges;
      c_base_versions =
        List.filter_map
          (fun t -> Option.map (fun tbl -> (t, Table.version tbl)) (Catalog.table_opt catalog t))
          base_tables }
  in
  (* 7. path-based restrictions over the instance, then reachability *)
  (* record observed cardinalities for the next warm execution's presizing *)
  cp.cp_hints <-
    List.map (fun (n, r) -> ("n:" ^ n, Vec.length r.nr_ni.Cache.ni_tuples)) nodes_rt
    @ List.map (fun (e, ei) -> ("e:" ^ e, ei.Cache.ei_conns.Cache.cs_len)) edges;
  if path_restrs <> [] then Obs.Trace.with_span "restrictions" (fun () ->
    List.iter
      (fun r ->
        match r with
        | R_node { rn_node; rn_var; rn_pred } ->
          let ni = Cache.node cache rn_node in
          let keep = Path.eval_node_restriction cache ~node:rn_node ~var:rn_var rn_pred in
          let keep_set = Hashtbl.create 64 in
          List.iter (fun p -> Hashtbl.replace keep_set p ()) keep;
          Vec.iter
            (fun t ->
              if t.Cache.t_live && not (Hashtbl.mem keep_set t.Cache.t_pos) then
                t.Cache.t_live <- false)
            ni.Cache.ni_tuples
        | R_edge { re_edge; re_parent_var; re_child_var; re_pred } ->
          let ei = Cache.edge cache re_edge in
          let pvar = String.lowercase_ascii re_parent_var
          and cvar = String.lowercase_ascii re_child_var in
          for i = 0 to Cache.conn_count ei - 1 do
            if Cache.conn_live_at ei i then begin
              let env =
                [ (pvar, { Path.b_node = ei.Cache.ei_parent; b_pos = Cache.conn_parent_at ei i });
                  (cvar, { Path.b_node = ei.Cache.ei_child; b_pos = Cache.conn_child_at ei i }) ]
              in
              if not (Value.is_true (Path.eval_pred cache env re_pred)) then
                Cache.set_conn_live ei i false
            end
          done)
      path_restrs;
    dbg "restrictions";
    Cache.recompute_reachability cache;
    dbg "reachability");
  dbg "tail";
  cache

(** [fetch_def ?force ~fixpoint db def path_restrs] compiles and
    immediately executes a composed CO definition — the one-shot path.
    [force] pins access-path selection (differential testing). *)
let fetch_def ?force ~fixpoint db (def : Co_schema.t) (path_restrs : restriction list) : Cache.t =
  execute_def ~fixpoint db (compile_def ?force db def) path_restrs

(* column projection, then relationship-updatability and locked-column
   analysis against the final (projected) schemas *)
let analyze_edge_of db cache name ei =
  let catalog = Db.catalog db in
  let ed = Co_schema.edge cache.Cache.c_def name in
  let parent_schema = (Cache.node cache ei.Cache.ei_parent).Cache.ni_schema in
  let child_schema = (Cache.node cache ei.Cache.ei_child).Cache.ni_schema in
  let upd = Semantic.analyze_edge catalog ed ~parent_schema ~child_schema in
  let pcols, ccols = Semantic.relationship_columns ed ~parent_schema ~child_schema in
  { ef_upd = upd; ef_pcols = pcols; ef_ccols = ccols }

let apply_edge_final cache ei (ef : edge_final) =
  ei.Cache.ei_upd <- ef.ef_upd;
  let pn = Cache.node cache ei.Cache.ei_parent and cn = Cache.node cache ei.Cache.ei_child in
  pn.Cache.ni_locked_cols <- List.sort_uniq compare (ef.ef_pcols @ pn.Cache.ni_locked_cols);
  cn.Cache.ni_locked_cols <- List.sort_uniq compare (ef.ef_ccols @ cn.Cache.ni_locked_cols)

let finalize db cache =
  Obs.Trace.with_span "finalize" @@ fun () ->
  apply_column_projection cache;
  List.iter
    (fun (name, ei) -> apply_edge_final cache ei (analyze_edge_of db cache name ei))
    cache.Cache.c_edges;
  cache

(** [finalize_plan db cp cache] is {!finalize} with the per-edge
    updatability analysis taken from the compiled plan instead of
    re-derived per fetch. Falls back to on-the-fly analysis for an edge
    the plan did not precompute (a TAKE differing from the compiled one). *)
let finalize_plan db (cp : compiled) cache =
  Obs.Trace.with_span "finalize" @@ fun () ->
  apply_column_projection cache;
  List.iter
    (fun (name, ei) ->
      let ef =
        match List.assoc_opt name cp.cp_final with
        | Some ef -> ef
        | None -> analyze_edge_of db cache name ei
      in
      apply_edge_final cache ei ef)
    cache.Cache.c_edges;
  cache

(** [fetch ?fixpoint db reg q] evaluates an XNF query: composes the CO
    definition, translates it to relational work, enforces reachability,
    evaluates path-based restrictions, applies the TAKE projection and
    returns the loaded cache. *)
let fetch ?(fixpoint = Semi_naive) db reg (q : query) : Cache.t =
  Obs.Trace.with_span "xnf.fetch" @@ fun () ->
  let def, path_restrs, take =
    Obs.Trace.with_span "semantic" (fun () -> View_registry.compose reg q)
  in
  let cp = compile_def ~take db def in
  finalize_plan db cp (apply_take (execute_def ~fixpoint db cp path_restrs) take)
