(* Composite-object schema graphs (§2 of the paper).

   A CO definition is the fully composed form of an XNF view or query:
   every node carries its (possibly restriction-wrapped) SQL derivation,
   every edge its predicate, optional USING link table, optional attributes
   and the aliases its predicate uses for the two partner tables.

   View composition happens at this level: importing a view merges its
   node and edge definitions, after which reachability is recomputed over
   the merged graph — which is why adding the 'membership' relationship in
   the paper's Fig. 3 makes employees e3/e4 appear even though they were
   not part of ALL-DEPS. *)

open Relational

type node_def = {
  nd_name : string;  (** lowercased component-table name *)
  nd_query : Sql_ast.select;  (** derivation, including merged node restrictions *)
  nd_cols : string list option;  (** TAKE column projection; [None] = all *)
}

type edge_def = {
  ed_name : string;
  ed_parent : string;  (** parent node name *)
  ed_child : string;  (** child node name *)
  ed_parent_alias : string;  (** qualifier for the parent in [ed_pred] *)
  ed_child_alias : string;
  ed_using : (string * string) option;  (** USING base table and its alias *)
  ed_attrs : (Sql_ast.expr * string) list;  (** relationship attributes *)
  ed_pred : Sql_ast.expr;  (** connection predicate over parent × child [× using] *)
}

type t = { co_nodes : node_def list; co_edges : edge_def list }

exception Schema_error of string

let err fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let empty = { co_nodes = []; co_edges = [] }

(** [node def name] is the node definition for [name].
    @raise Schema_error when absent. *)
let node def name =
  let name = String.lowercase_ascii name in
  match List.find_opt (fun n -> String.equal n.nd_name name) def.co_nodes with
  | Some n -> n
  | None -> err "[XNF013] unknown component table %s" name

(** [node_opt def name] is [node] returning an option. *)
let node_opt def name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun n -> String.equal n.nd_name name) def.co_nodes

(** [edge def name] is the edge definition for [name].
    @raise Schema_error when absent. *)
let edge def name =
  let name = String.lowercase_ascii name in
  match List.find_opt (fun e -> String.equal e.ed_name name) def.co_edges with
  | Some e -> e
  | None -> err "[XNF013] unknown relationship %s" name

(** [edge_opt def name] is [edge] returning an option. *)
let edge_opt def name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> String.equal e.ed_name name) def.co_edges

(** [incoming def name] lists edges whose child is [name]. *)
let incoming def name =
  let name = String.lowercase_ascii name in
  List.filter (fun e -> String.equal e.ed_child name) def.co_edges

(** [outgoing def name] lists edges whose parent is [name]. *)
let outgoing def name =
  let name = String.lowercase_ascii name in
  List.filter (fun e -> String.equal e.ed_parent name) def.co_edges

(** [roots def] lists root nodes — components with no incoming edge; the
    reachability constraint makes their tuples the traversal sources. *)
let roots def = List.filter (fun n -> incoming def n.nd_name = []) def.co_nodes

(** [add_node def nd] adds a node. @raise Schema_error on duplicate name. *)
let add_node def nd =
  if node_opt def nd.nd_name <> None || edge_opt def nd.nd_name <> None then
    err "[XNF001] duplicate component name %s" nd.nd_name;
  { def with co_nodes = def.co_nodes @ [ nd ] }

(** [add_edge def ed] adds an edge; partner tables must already be
    component tables (well-formedness, §2).
    @raise Schema_error on duplicates or unknown partners. *)
let add_edge def ed =
  if edge_opt def ed.ed_name <> None || node_opt def ed.ed_name <> None then
    err "[XNF001] duplicate component name %s" ed.ed_name;
  if node_opt def ed.ed_parent = None then
    err "[XNF002] relationship %s: parent %s is not a component table" ed.ed_name ed.ed_parent;
  if node_opt def ed.ed_child = None then
    err "[XNF002] relationship %s: child %s is not a component table" ed.ed_name ed.ed_child;
  { def with co_edges = def.co_edges @ [ ed ] }

(** [merge a b] composes two definitions (view import).
    @raise Schema_error when component names clash. *)
let merge a b = List.fold_left add_edge (List.fold_left add_node a b.co_nodes) b.co_edges

(** [is_recursive def] detects cycles in the schema graph (§2: recursive
    COs). *)
let is_recursive def =
  (* DFS cycle detection over parent -> child edges *)
  let color = Hashtbl.create 16 in
  (* 0 = white (implicit), 1 = grey, 2 = black *)
  let rec visit n =
    match Hashtbl.find_opt color n with
    | Some 1 -> true
    | Some 2 -> false
    | _ ->
      Hashtbl.replace color n 1;
      let cyc = List.exists (fun e -> visit e.ed_child) (outgoing def n) in
      Hashtbl.replace color n 2;
      cyc
  in
  List.exists (fun nd -> visit nd.nd_name) def.co_nodes

(** [has_schema_sharing def] holds when some node has two incoming edges
    (§2: schema sharing). *)
let has_schema_sharing def =
  List.exists (fun nd -> List.length (incoming def nd.nd_name) >= 2) def.co_nodes

(** [topo_order def] orders nodes parents-before-children when the graph
    is a DAG; [None] for recursive schemas (which need fixpoint
    evaluation). *)
let topo_order def =
  if is_recursive def then None
  else begin
    let visited = Hashtbl.create 16 in
    let order = ref [] in
    let rec visit n =
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.replace visited n ();
        List.iter (fun e -> visit e.ed_child) (outgoing def n);
        order := n :: !order
      end
    in
    List.iter (fun nd -> visit nd.nd_name) (roots def);
    (* nodes unreachable from any root still need slots (their extents are
       empty by the reachability constraint) *)
    List.iter (fun nd -> if not (Hashtbl.mem visited nd.nd_name) then order := !order @ [ nd.nd_name ])
      def.co_nodes;
    Some !order
  end

(** [validate def] checks global well-formedness: at least one node; every
    edge's partners present (guaranteed by [add_edge], re-checked after
    projection); a warning-level condition — no root — is an error because
    such a CO is empty by reachability. *)
let validate def =
  if def.co_nodes = [] then err "[XNF010] composite object has no component tables";
  List.iter
    (fun e ->
      if node_opt def e.ed_parent = None || node_opt def e.ed_child = None then
        err "[XNF019] relationship %s references a projected-away component" e.ed_name)
    def.co_edges;
  if roots def = [] then err "[XNF010] composite object has no root table: every tuple would be unreachable"

(** [project def take] applies a TAKE structural projection: keeps the
    named components; edges survive only when both partners survive
    (implicit discard, §3.3). *)
let project def (take : Xnf_ast.take) =
  match take with
  | Xnf_ast.Take_star -> def
  | Xnf_ast.Take_items items ->
    let keep_nodes = Hashtbl.create 8 in
    let keep_edges = Hashtbl.create 8 in
    List.iter
      (fun item ->
        match item with
        | Xnf_ast.Take_node (n, cols) -> begin
          let n = String.lowercase_ascii n in
          match node_opt def n, edge_opt def n, cols with
          | Some _, _, _ -> Hashtbl.replace keep_nodes n cols
          | None, Some _, Xnf_ast.Take_all_cols ->
            (* "edge ( * )" is tolerated and means the edge itself *)
            Hashtbl.replace keep_edges n ()
          | None, Some _, Xnf_ast.Take_cols _ -> err "[XNF018] column projection on relationship %s" n
          | None, None, _ -> err "[XNF016] TAKE references unknown component %s" n
        end
        | Xnf_ast.Take_edge e -> begin
          let e = String.lowercase_ascii e in
          match edge_opt def e, node_opt def e with
          | Some _, _ -> Hashtbl.replace keep_edges e ()
          | None, Some _ -> Hashtbl.replace keep_nodes e Xnf_ast.Take_all_cols
          | None, None -> err "[XNF016] TAKE references unknown component %s" e
        end)
      items;
    let co_nodes =
      List.filter_map
        (fun nd ->
          match Hashtbl.find_opt keep_nodes nd.nd_name with
          | None -> None
          | Some Xnf_ast.Take_all_cols -> Some nd
          | Some (Xnf_ast.Take_cols cols) -> Some { nd with nd_cols = Some cols })
        def.co_nodes
    in
    let surviving n = List.exists (fun nd -> String.equal nd.nd_name n) co_nodes in
    let co_edges =
      List.filter
        (fun e ->
          Hashtbl.mem keep_edges e.ed_name && surviving e.ed_parent && surviving e.ed_child)
        def.co_edges
    in
    (* an explicitly TAKEn edge whose partner was projected away violates
       well-formedness: report rather than silently dropping *)
    Hashtbl.iter
      (fun e () ->
        if not (List.exists (fun ed -> String.equal ed.ed_name e) co_edges) then
          err "[XNF019] TAKE keeps relationship %s but drops one of its partner tables" e)
      keep_edges;
    { co_nodes; co_edges }

(** [pp] prints the schema graph (nodes, then edges parent->child). *)
let pp ppf def =
  Fmt.pf ppf "CO schema:@.";
  List.iter
    (fun nd ->
      let root = if incoming def nd.nd_name = [] then " (root)" else "" in
      Fmt.pf ppf "  node %s%s := %a@." nd.nd_name root Sql_ast.pp_select nd.nd_query)
    def.co_nodes;
  List.iter
    (fun e ->
      Fmt.pf ppf "  edge %s : %s -> %s WHERE %a@." e.ed_name e.ed_parent e.ed_child
        Sql_ast.pp_expr e.ed_pred)
    def.co_edges
