(** The SQL/XNF application programming interface (Fig. 7 of the paper).

    One [Api.t] is a session against a shared relational database: plain
    SQL statements execute on the relational engine unchanged, XNF
    statements go through composition → semantic rewrite → relational
    execution → cache load. SQL applications and composite-object
    applications share the same data. *)

open Relational

type t

(** Result of executing one statement through {!exec}. *)
type outcome =
  | Fetched of Cache.t  (** an [OUT OF ... TAKE] query: the loaded CO *)
  | Co_deleted of int  (** [OUT OF ... DELETE]: number of base rows removed *)
  | Co_updated of int  (** [OUT OF ... UPDATE]: number of component tuples changed *)
  | View_defined of string
  | View_dropped of string
  | Prepared of string  (** [PREPARE name AS ...]: plan compiled and stored *)
  | Sql of Db.exec_result  (** a plain SQL statement's result *)

exception Api_error of string

(** [create db] opens an XNF session over [db]. *)
val create : Db.t -> t

(** [db api] is the underlying relational session. *)
val db : t -> Db.t

(** [registry api] is the XNF view registry. *)
val registry : t -> View_registry.t

(** [fetch ?fixpoint api q] evaluates a parsed XNF query into a cache. *)
val fetch : ?fixpoint:Translate.fixpoint -> t -> Xnf_ast.query -> Cache.t

(** [fetch_string api text] parses and evaluates an [OUT OF ... TAKE]
    query (through the result cache when enabled). *)
val fetch_string : ?fixpoint:Translate.fixpoint -> t -> string -> Cache.t

(** [set_result_cache api n] enables an LRU cache of the last [n] fetch
    results, keyed by query text and validated against base-table versions
    before reuse; [0] (the default) disables it. Hits/misses/evictions are
    counted as [xnf.fetchcache.*] in the metrics registry. *)
val set_result_cache : t -> int -> unit

(** [set_plan_cache api n] enables an LRU cache of the last [n] compiled
    fetch plans, keyed by query text and validated against the
    view-registry version, catalog version and index epoch recorded at
    compile time; [0] (the default) disables it. DDL invalidates lazily on
    the next lookup. Activity is counted as [xnf.plancache.*] and
    compilations as [xnf.plan.compiles]. *)
val set_plan_cache : t -> int -> unit

(** [plans api] lists the cached (text, plan) pairs, most recently used
    first. *)
val plans : t -> (string * Fetch_plan.t) list

(** [prepared_plans api] lists PREPARE'd (name, plan) pairs, sorted. *)
val prepared_plans : t -> (string * Fetch_plan.t) list

(** [prepare api ~name q] compiles [q] and stores the plan under [name]
    (case-insensitive), replacing any previous plan of that name. *)
val prepare : t -> name:string -> Xnf_ast.query -> unit

(** [execute_prepared api name vals] runs a PREPARE'd plan with [vals]
    bound to its [?] parameter slots in lexical order; a plan invalidated
    by DDL since PREPARE is transparently recompiled.
    @raise Api_error on unknown names or parameter-count mismatches. *)
val execute_prepared :
  ?fixpoint:Translate.fixpoint -> t -> string -> Value.t list -> Cache.t

(** [explain_analyze api text] runs [text] — an XNF [OUT OF ... TAKE]
    query or a SQL SELECT — under the instrumented executor and returns a
    report: the pipeline span tree with per-stage timings plus per-operator
    actual row counts. *)
val explain_analyze : t -> string -> string

(** [exec api text] parses and executes one statement — XNF or plain SQL. *)
val exec : t -> string -> outcome

(** {2 The session advisory log}

    Findings of the static plan advisor ([Check.Plan_advisor]) and the
    estimate-vs-actual drift detector, surfaced through the
    [sys.advisories] virtual view. Api cannot depend on the check layer,
    so the drift detector is injected as a hook. *)

(** One logged advisory: a diagnostic flattened to strings plus its
    source ("advise" or "drift"), the relationship/base table it concerns
    ("" when schema-level), and the fingerprint of the query it was
    raised for (joinable with [sys.statements]). *)
type advisory = {
  adv_seq : int;
  adv_source : string;
  adv_code : string;
  adv_severity : string;
  adv_edge : string;
  adv_table : string;
  adv_message : string;
  adv_hint : string;
  adv_fingerprint : string;
  adv_query : string;
  adv_at_ns : float;
}

(** [add_advisories api ~source ~query entries] appends [(diag, edge,
    table)] findings to the log (a ring capped at 256 entries). *)
val add_advisories :
  t -> source:string -> query:string -> (Diag.t * string option * string option) list -> unit

(** [advisories api] is the session advisory log, newest first. *)
val advisories : t -> advisory list

(** [clear_advisories api] empties the log. *)
val clear_advisories : t -> unit

(** [set_drift_advisor api f] installs (or removes, with [None]) the
    drift detector: while installed, every plan-executed fetch runs [f db
    plan cache] afterwards and logs its findings with source ["drift"]
    (fetches route through compiled plans even with the plan cache
    disabled). Detector exceptions are swallowed — advice must never
    break a fetch. *)
val set_drift_advisor :
  t ->
  (Relational.Db.t -> Fetch_plan.t -> Cache.t -> (Diag.t * string option * string option) list)
  option ->
  unit

(** {2 Durability}

    With a data directory attached to the underlying {!Db.t}, the whole
    session — relational catalog and the XNF view registry — checkpoints
    and recovers as one unit. XNF view DDL travels as opaque [R_ext] WAL
    records and checkpoint sections; plain SQL state is handled by the
    relational layer. *)

(** [checkpoint api] snapshots the session into the data directory and
    truncates the WAL; returns the checkpoint LSN.
    @raise Relational.Db.Exec_error without a data dir or in a txn. *)
val checkpoint : t -> int

(** [recover api] rebuilds the session from the data directory: clears
    and replays the XNF view registry, drops the result cache, and runs
    relational recovery (cached fetch plans invalidate lazily via the
    bumped registry/catalog versions and index epoch).
    @raise Relational.Db.Exec_error without a data dir or in a txn. *)
val recover : t -> Relational.Db.recovery_stats

(** [session api cache] opens a manipulation session on a loaded CO. *)
val session : t -> Cache.t -> Udi.t

(** [fetch_count api] counts composite objects loaded this session. *)
val fetch_count : t -> int
