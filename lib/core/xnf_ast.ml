(* Abstract syntax of the XNF language extensions (§3 of the paper).

   An XNF query is the CO constructor

     OUT OF <bindings> [WHERE <restrictions>] TAKE <take-list>

   where bindings introduce component tables (nodes) from SQL derivations,
   relationships (edges) from RELATE clauses, or import all components of a
   previously defined XNF view. Restrictions qualify nodes or edges with
   SUCH THAT predicates that may contain path expressions; the TAKE clause
   is the structural projection.

   Plain SQL fragments reuse {!Relational.Sql_ast} wholesale — XNF node
   definitions are ordinary SQL SELECTs, as in the paper. *)

open Relational

(** Predicates in SUCH THAT clauses: SQL expressions extended with path
    expressions (§3.5). *)
type xexpr =
  | X_col of string option * string
  | X_lit of Value.t
  | X_cmp of Expr.cmp * xexpr * xexpr
  | X_arith of Expr.arith_op * xexpr * xexpr
  | X_neg of xexpr
  | X_and of xexpr * xexpr
  | X_or of xexpr * xexpr
  | X_not of xexpr
  | X_is_null of xexpr
  | X_is_not_null of xexpr
  | X_like of xexpr * xexpr
  | X_in_list of xexpr * xexpr list
  | X_fn of string * xexpr list
  | X_count_path of path  (** [COUNT(v->edge->...)]: number of distinct reachable target tuples *)
  | X_exists_path of path  (** [EXISTS v->edge->...]: non-emptiness *)
  | X_param of int  (** [?] placeholder, numbered in lexical order over the statement *)

(** A path expression: a start designator followed by steps. The start is
    either a variable bound by the enclosing restriction (tuple-rooted
    path) or a node name (set-rooted path over all tuples of that node). *)
and path = { p_start : string; p_steps : step list }

(** One [->] step: crossing an edge by name, or landing on a node —
    optionally binding a variable and qualifying with a predicate
    ("qualified path expression"). Node steps also disambiguate direction
    for cyclic relationships. *)
and step =
  | Step_edge of string
  | Step_node of { sn_node : string; sn_var : string option; sn_pred : xexpr option }

(** One OUT OF binding. *)
type binding =
  | B_node of { bn_name : string; bn_query : Sql_ast.select }
      (** [name AS (SELECT ...)]; the shorthand [name AS table] parses as
          [SELECT * FROM table] *)
  | B_edge of {
      be_name : string;
      be_parent : string;
      be_parent_var : string option;  (** role variable, required for cyclic edges *)
      be_child : string;
      be_child_var : string option;
      be_attrs : (Sql_ast.expr * string) list;  (** WITH ATTRIBUTES expr [AS name] *)
      be_using : (string * string) option;  (** USING base-table [alias] *)
      be_pred : Sql_ast.expr;
    }
  | B_view of string  (** import all components of an XNF view *)

(** A SUCH THAT restriction (§3.3). *)
type restriction =
  | R_node of { rn_node : string; rn_var : string option; rn_pred : xexpr }
  | R_edge of { re_edge : string; re_parent_var : string; re_child_var : string; re_pred : xexpr }

type take_cols = Take_all_cols | Take_cols of string list

type take_item = Take_node of string * take_cols | Take_edge of string

type take = Take_star | Take_items of take_item list

type query = { q_out_of : binding list; q_where : restriction list; q_take : take }

(** CO-level update: [SET] assignments applied to every tuple of one
    component of the target CO (§3.7: "update, delete, and insert are
    available at the CO level"). *)
type co_update = { cu_node : string; cu_sets : (string * Sql_ast.expr) list }

(** Top-level XNF statements. *)
type stmt =
  | X_query of query
  | X_create_view of string * query
  | X_delete of query  (** [OUT OF ... WHERE ... DELETE *]: CO deletion (§3.7) *)
  | X_update of query * co_update
      (** [OUT OF ... WHERE ... UPDATE node SET col = expr, ...] *)
  | X_drop_view of string
  | X_prepare of string * query
      (** [PREPARE name AS OUT OF ... TAKE ...]: compile once, cache the
          plan under [name]; [?] markers in the query become parameter
          slots bound at EXECUTE time *)
  | X_execute of string * Value.t list
      (** [EXECUTE name (v1, ...)]: run a prepared plan with the given
          parameter values *)
  | X_sql of Sql_ast.stmt  (** plain SQL falls through to the relational engine *)

(* ---- pretty-printing (round-trip tested) ---- *)

let rec pp_xexpr ppf = function
  | X_col (None, n) -> Fmt.string ppf n
  | X_col (Some q, n) -> Fmt.pf ppf "%s.%s" q n
  | X_lit v -> Fmt.string ppf (Value.to_sql_literal v)
  | X_cmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_xexpr a Expr.pp_cmp op pp_xexpr b
  | X_arith (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_xexpr a (Sql_ast.arith_sym op) pp_xexpr b
  | X_neg a -> Fmt.pf ppf "(-%a)" pp_xexpr a
  | X_and (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_xexpr a pp_xexpr b
  | X_or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_xexpr a pp_xexpr b
  | X_not a -> Fmt.pf ppf "(NOT %a)" pp_xexpr a
  | X_is_null a -> Fmt.pf ppf "(%a IS NULL)" pp_xexpr a
  | X_is_not_null a -> Fmt.pf ppf "(%a IS NOT NULL)" pp_xexpr a
  | X_like (a, p) -> Fmt.pf ppf "(%a LIKE %a)" pp_xexpr a pp_xexpr p
  | X_in_list (a, items) ->
    Fmt.pf ppf "(%a IN (%a))" pp_xexpr a (Fmt.list ~sep:(Fmt.any ", ") pp_xexpr) items
  | X_fn (name, args) -> Fmt.pf ppf "%s(%a)" name (Fmt.list ~sep:(Fmt.any ", ") pp_xexpr) args
  | X_count_path p -> Fmt.pf ppf "COUNT(%a)" pp_path p
  | X_exists_path p -> Fmt.pf ppf "(EXISTS %a)" pp_path p
  | X_param _ -> Fmt.string ppf "?"

and pp_path ppf p =
  Fmt.string ppf p.p_start;
  List.iter (fun s -> Fmt.pf ppf "->%a" pp_step s) p.p_steps

and pp_step ppf = function
  | Step_edge e -> Fmt.string ppf e
  | Step_node { sn_node; sn_var = None; sn_pred = None } -> Fmt.string ppf sn_node
  | Step_node { sn_node; sn_var; sn_pred } ->
    Fmt.pf ppf "(%s" sn_node;
    Option.iter (fun v -> Fmt.pf ppf " %s" v) sn_var;
    Option.iter (fun p -> Fmt.pf ppf " WHERE %a" pp_xexpr p) sn_pred;
    Fmt.pf ppf ")"

let pp_binding ppf = function
  | B_node { bn_name; bn_query } -> Fmt.pf ppf "%s AS (%a)" bn_name Sql_ast.pp_select bn_query
  | B_edge { be_name; be_parent; be_parent_var; be_child; be_child_var; be_attrs; be_using; be_pred } ->
    Fmt.pf ppf "%s AS (RELATE %s%a, %s%a" be_name be_parent
      (Fmt.option (fun ppf v -> Fmt.pf ppf " %s" v))
      be_parent_var be_child
      (Fmt.option (fun ppf v -> Fmt.pf ppf " %s" v))
      be_child_var;
    if be_attrs <> [] then
      Fmt.pf ppf " WITH ATTRIBUTES %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, n) -> Fmt.pf ppf "%a AS %s" Sql_ast.pp_expr e n))
        be_attrs;
    Option.iter (fun (t, a) -> Fmt.pf ppf " USING %s %s" t a) be_using;
    Fmt.pf ppf " WHERE %a)" Sql_ast.pp_expr be_pred
  | B_view v -> Fmt.string ppf v

let pp_restriction ppf = function
  | R_node { rn_node; rn_var; rn_pred } ->
    Fmt.pf ppf "%s%a SUCH THAT %a" rn_node
      (Fmt.option (fun ppf v -> Fmt.pf ppf " %s" v))
      rn_var pp_xexpr rn_pred
  | R_edge { re_edge; re_parent_var; re_child_var; re_pred } ->
    Fmt.pf ppf "%s (%s, %s) SUCH THAT %a" re_edge re_parent_var re_child_var pp_xexpr re_pred

let pp_take_item ppf = function
  | Take_node (n, Take_all_cols) -> Fmt.pf ppf "%s(*)" n
  | Take_node (n, Take_cols cols) ->
    Fmt.pf ppf "%s(%a)" n (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) cols
  | Take_edge e -> Fmt.string ppf e

let pp_query ppf q =
  Fmt.pf ppf "OUT OF %a" (Fmt.list ~sep:(Fmt.any ", ") pp_binding) q.q_out_of;
  if q.q_where <> [] then
    Fmt.pf ppf " WHERE %a" (Fmt.list ~sep:(Fmt.any " AND ") pp_restriction) q.q_where;
  match q.q_take with
  | Take_star -> Fmt.pf ppf " TAKE *"
  | Take_items items -> Fmt.pf ppf " TAKE %a" (Fmt.list ~sep:(Fmt.any ", ") pp_take_item) items

let pp_stmt ppf = function
  | X_query q -> pp_query ppf q
  | X_create_view (name, q) -> Fmt.pf ppf "CREATE VIEW %s AS %a" name pp_query q
  | X_delete q ->
    Fmt.pf ppf "OUT OF %a" (Fmt.list ~sep:(Fmt.any ", ") pp_binding) q.q_out_of;
    if q.q_where <> [] then
      Fmt.pf ppf " WHERE %a" (Fmt.list ~sep:(Fmt.any " AND ") pp_restriction) q.q_where;
    (match q.q_take with
    | Take_star -> Fmt.pf ppf " DELETE *"
    | Take_items items -> Fmt.pf ppf " DELETE %a" (Fmt.list ~sep:(Fmt.any ", ") pp_take_item) items)
  | X_update (q, cu) ->
    Fmt.pf ppf "OUT OF %a" (Fmt.list ~sep:(Fmt.any ", ") pp_binding) q.q_out_of;
    if q.q_where <> [] then
      Fmt.pf ppf " WHERE %a" (Fmt.list ~sep:(Fmt.any " AND ") pp_restriction) q.q_where;
    let pp_set ppf (c, e) = Fmt.pf ppf "%s = %a" c Sql_ast.pp_expr e in
    Fmt.pf ppf " UPDATE %s SET %a" cu.cu_node (Fmt.list ~sep:(Fmt.any ", ") pp_set) cu.cu_sets
  | X_drop_view v -> Fmt.pf ppf "DROP VIEW %s" v
  | X_prepare (name, q) -> Fmt.pf ppf "PREPARE %s AS %a" name pp_query q
  | X_execute (name, []) -> Fmt.pf ppf "EXECUTE %s" name
  | X_execute (name, vals) ->
    Fmt.pf ppf "EXECUTE %s (%a)" name
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf v -> Fmt.string ppf (Value.to_sql_literal v)))
      vals
  | X_sql s -> Sql_ast.pp_stmt ppf s

(** [query_to_string q] renders [q] in re-parsable XNF syntax. *)
let query_to_string q = Fmt.str "%a" pp_query q

(** [stmt_to_string s] renders [s] in re-parsable XNF syntax. *)
let stmt_to_string s = Fmt.str "%a" pp_stmt s

(** [xexpr_of_sql e] embeds a plain SQL expression (path-free by
    construction). Subqueries are not representable in SUCH THAT predicates
    and raise [Invalid_argument]. *)
let rec xexpr_of_sql (e : Sql_ast.expr) : xexpr =
  match e with
  | Sql_ast.E_col (q, n) -> X_col (q, n)
  | Sql_ast.E_lit v -> X_lit v
  | Sql_ast.E_cmp (op, a, b) -> X_cmp (op, xexpr_of_sql a, xexpr_of_sql b)
  | Sql_ast.E_arith (op, a, b) -> X_arith (op, xexpr_of_sql a, xexpr_of_sql b)
  | Sql_ast.E_neg a -> X_neg (xexpr_of_sql a)
  | Sql_ast.E_and (a, b) -> X_and (xexpr_of_sql a, xexpr_of_sql b)
  | Sql_ast.E_or (a, b) -> X_or (xexpr_of_sql a, xexpr_of_sql b)
  | Sql_ast.E_not a -> X_not (xexpr_of_sql a)
  | Sql_ast.E_is_null a -> X_is_null (xexpr_of_sql a)
  | Sql_ast.E_is_not_null a -> X_is_not_null (xexpr_of_sql a)
  | Sql_ast.E_like (a, p) -> X_like (xexpr_of_sql a, xexpr_of_sql p)
  | Sql_ast.E_in_list (a, items) -> X_in_list (xexpr_of_sql a, List.map xexpr_of_sql items)
  | Sql_ast.E_fn (n, args) -> X_fn (n, List.map xexpr_of_sql args)
  | Sql_ast.E_param i -> X_param i
  | Sql_ast.E_case _ | Sql_ast.E_count_star | Sql_ast.E_fn_distinct _ | Sql_ast.E_exists _
  | Sql_ast.E_in_query _ | Sql_ast.E_scalar _ ->
    invalid_arg "Xnf_ast.xexpr_of_sql: unsupported construct in SUCH THAT predicate"

(** [sql_of_xexpr e] is the inverse embedding; [None] when [e] contains a
    path expression (such predicates are evaluated over the CO instance,
    not pushed into SQL). *)
let rec sql_of_xexpr (e : xexpr) : Sql_ast.expr option =
  let open Sql_ast in
  let ( let* ) = Option.bind in
  match e with
  | X_col (q, n) -> Some (E_col (q, n))
  | X_lit v -> Some (E_lit v)
  | X_cmp (op, a, b) ->
    let* a = sql_of_xexpr a in
    let* b = sql_of_xexpr b in
    Some (E_cmp (op, a, b))
  | X_arith (op, a, b) ->
    let* a = sql_of_xexpr a in
    let* b = sql_of_xexpr b in
    Some (E_arith (op, a, b))
  | X_neg a ->
    let* a = sql_of_xexpr a in
    Some (E_neg a)
  | X_and (a, b) ->
    let* a = sql_of_xexpr a in
    let* b = sql_of_xexpr b in
    Some (E_and (a, b))
  | X_or (a, b) ->
    let* a = sql_of_xexpr a in
    let* b = sql_of_xexpr b in
    Some (E_or (a, b))
  | X_not a ->
    let* a = sql_of_xexpr a in
    Some (E_not a)
  | X_is_null a ->
    let* a = sql_of_xexpr a in
    Some (E_is_null a)
  | X_is_not_null a ->
    let* a = sql_of_xexpr a in
    Some (E_is_not_null a)
  | X_like (a, p) ->
    let* a = sql_of_xexpr a in
    let* p = sql_of_xexpr p in
    Some (E_like (a, p))
  | X_in_list (a, items) ->
    let* a = sql_of_xexpr a in
    let items = List.map sql_of_xexpr items in
    if List.exists Option.is_none items then None
    else Some (E_in_list (a, List.map Option.get items))
  | X_fn (n, args) ->
    let args = List.map sql_of_xexpr args in
    if List.exists Option.is_none args then None else Some (E_fn (n, List.map Option.get args))
  | X_param i -> Some (E_param i)
  | X_count_path _ | X_exists_path _ -> None

(** [has_path e] holds when the predicate contains a path expression. *)
let has_path e = Option.is_none (sql_of_xexpr e)

(** [subst_params_xexpr env e] replaces every [X_param i] with the literal
    [env.(i)], descending into qualified-path-step predicates.
    @raise Invalid_argument when a slot is out of range. *)
let rec subst_params_xexpr (env : Value.t array) (e : xexpr) : xexpr =
  let s = subst_params_xexpr env in
  let spath p =
    { p with
      p_steps =
        List.map
          (function
            | Step_edge _ as st -> st
            | Step_node sn -> Step_node { sn with sn_pred = Option.map s sn.sn_pred })
          p.p_steps }
  in
  match e with
  | X_param i ->
    if i < 0 || i >= Array.length env then
      invalid_arg
        (Printf.sprintf "parameter ?%d has no bound value (%d given)" (i + 1) (Array.length env));
    X_lit env.(i)
  | X_col _ | X_lit _ -> e
  | X_cmp (op, a, b) -> X_cmp (op, s a, s b)
  | X_arith (op, a, b) -> X_arith (op, s a, s b)
  | X_neg a -> X_neg (s a)
  | X_and (a, b) -> X_and (s a, s b)
  | X_or (a, b) -> X_or (s a, s b)
  | X_not a -> X_not (s a)
  | X_is_null a -> X_is_null (s a)
  | X_is_not_null a -> X_is_not_null (s a)
  | X_like (a, p) -> X_like (s a, s p)
  | X_in_list (a, items) -> X_in_list (s a, List.map s items)
  | X_fn (n, args) -> X_fn (n, List.map s args)
  | X_count_path p -> X_count_path (spath p)
  | X_exists_path p -> X_exists_path (spath p)

(** [subst_params_query env q] substitutes parameters through every
    expression position of [q]: node queries, RELATE predicates and
    attributes, and SUCH THAT restrictions. *)
let subst_params_query (env : Value.t array) (q : query) : query =
  let se = Sql_ast.subst_params_expr env in
  let sx = subst_params_xexpr env in
  let binding = function
    | B_node bn -> B_node { bn with bn_query = Sql_ast.subst_params_select env bn.bn_query }
    | B_edge be ->
      B_edge
        { be with
          be_attrs = List.map (fun (e, n) -> (se e, n)) be.be_attrs;
          be_pred = se be.be_pred }
    | B_view _ as b -> b
  in
  let restriction = function
    | R_node rn -> R_node { rn with rn_pred = sx rn.rn_pred }
    | R_edge re -> R_edge { re with re_pred = sx re.re_pred }
  in
  { q with
    q_out_of = List.map binding q.q_out_of;
    q_where = List.map restriction q.q_where }

(** [count_params_query q] is the number of parameter slots in [q] (1 + the
    highest [?] index appearing anywhere, 0 when none). *)
let count_params_query (q : query) : int =
  let rec cx (e : xexpr) : int =
    let cl es = List.fold_left (fun acc x -> max acc (cx x)) 0 es in
    let cpath p =
      List.fold_left
        (fun acc -> function
          | Step_edge _ -> acc
          | Step_node { sn_pred; _ } -> max acc (match sn_pred with Some e -> cx e | None -> 0))
        0 p.p_steps
    in
    match e with
    | X_param i -> i + 1
    | X_col _ | X_lit _ -> 0
    | X_cmp (_, a, b) | X_arith (_, a, b) | X_and (a, b) | X_or (a, b) | X_like (a, b) ->
      max (cx a) (cx b)
    | X_neg a | X_not a | X_is_null a | X_is_not_null a -> cx a
    | X_in_list (a, items) -> max (cx a) (cl items)
    | X_fn (_, args) -> cl args
    | X_count_path p | X_exists_path p -> cpath p
  in
  let binding = function
    | B_node bn -> Sql_ast.count_params_select bn.bn_query
    | B_edge be ->
      List.fold_left
        (fun acc (e, _) -> max acc (Sql_ast.count_params_expr e))
        (Sql_ast.count_params_expr be.be_pred)
        be.be_attrs
    | B_view _ -> 0
  in
  let restriction = function
    | R_node rn -> cx rn.rn_pred
    | R_edge re -> cx re.re_pred
  in
  let fold f xs = List.fold_left (fun acc x -> max acc (f x)) 0 xs in
  max (fold binding q.q_out_of) (fold restriction q.q_where)
