(* XNF cursors over the cache (§3.7, §4.2).

   Independent cursors enumerate all live tuples of a node. Dependent
   cursors are bound to another cursor through a relationship or a longer
   path: they enumerate only the tuples reachable from the parent cursor's
   current tuple, and their enumeration is recomputed whenever the parent
   moves. Cursor steps are pure in-memory adjacency walks — no query, no
   inter-process call — which is where the orders-of-magnitude browsing
   speedup over the SQL interface comes from (E1/E2). *)

open Xnf_ast

exception Cursor_error of string

let err fmt = Fmt.kstr (fun s -> raise (Cursor_error s)) fmt

(* browsing activity: [opens] per cursor opened, [steps] per next-call,
   [expansions] per dependent re-enumeration after a parent move *)
let m_opens = Obs.Metrics.counter "xnf.cursor.opens"
let m_steps = Obs.Metrics.counter "xnf.cursor.steps"
let m_expansions = Obs.Metrics.counter "xnf.cursor.expansions"

type kind =
  | Independent of { ind_order : (string * [ `Asc | `Desc ]) option }
  | Dependent of { dep_parent : t; dep_path : step list; mutable dep_parent_pos : int option }

and t = {
  cur_cache : Cache.t;
  cur_node : string;  (** node enumerated by this cursor *)
  mutable cur_positions : int list;  (** remaining enumeration *)
  mutable cur_current : int option;  (** position of the current tuple *)
  cur_kind : kind;
}

(* the node a path lands on, resolved statically *)
let target_node cache start steps =
  List.fold_left
    (fun current s ->
      match s with
      | Step_node { sn_node; _ } -> String.lowercase_ascii sn_node
      | Step_edge name -> begin
        match Cache.edge_opt cache name with
        | Some ei ->
          if String.equal current ei.Cache.ei_parent then ei.Cache.ei_child
          else if String.equal current ei.Cache.ei_child then ei.Cache.ei_parent
          else err "relationship %s does not involve %s" name current
        | None -> begin
          match Cache.node_opt cache name with
          | Some _ -> String.lowercase_ascii name
          | None -> err "unknown relationship or component %s" name
        end
      end)
    start steps

(** [open_independent ?order cache node] opens a cursor over all live
    tuples of [node]. [order] optionally sorts the enumeration by a column
    ([`Asc] / [`Desc]); the default is cache position order. *)
let enumerate cache node order =
  let ni = Cache.node cache node in
  let tuples = Cache.live_tuples ni in
  let tuples =
    match order with
    | None -> tuples
    | Some (col, dir) ->
      let ci =
        match Relational.Schema.find_opt ni.Cache.ni_schema col with
        | Some i -> i
        | None -> err "no column %s in component %s" col node
      in
      let cmp a b =
        let c = Relational.Value.compare_total (Cache.col a ci) (Cache.col b ci) in
        match dir with `Asc -> c | `Desc -> -c
      in
      List.stable_sort cmp tuples
  in
  List.map (fun t -> t.Cache.t_pos) tuples

let open_independent ?order cache node =
  Obs.Metrics.incr m_opens;
  let ni = Cache.node cache node in
  { cur_cache = cache; cur_node = ni.Cache.ni_name;
    cur_positions = enumerate cache ni.Cache.ni_name order; cur_current = None;
    cur_kind = Independent { ind_order = order } }

(** [open_dependent ~parent path] opens a cursor bound to [parent] through
    [path] (a list of steps, typically a single relationship). The cursor
    enumerates tuples reachable from the parent's current tuple; it resets
    automatically when the parent moves. *)
let open_dependent ~parent (path : step list) =
  Obs.Metrics.incr m_opens;
  if path = [] then err "dependent cursor needs a non-empty path";
  let node = target_node parent.cur_cache parent.cur_node path in
  { cur_cache = parent.cur_cache; cur_node = node; cur_positions = [];
    cur_current = None;
    cur_kind = Dependent { dep_parent = parent; dep_path = path; dep_parent_pos = None } }

(** [via edge] is the single-step path crossing [edge], for the common
    dependent-cursor case. *)
let via edge = [ Step_edge edge ]

let refresh_dependent c =
  match c.cur_kind with
  | Independent _ -> ()
  | Dependent d -> begin
    let ppos = d.dep_parent.cur_current in
    if ppos <> d.dep_parent_pos then begin
      d.dep_parent_pos <- ppos;
      c.cur_current <- None;
      match ppos with
      | None -> c.cur_positions <- []
      | Some pos ->
        Obs.Metrics.incr m_expansions;
        let env =
          [ ("__cursor", { Path.b_node = d.dep_parent.cur_node; b_pos = pos }) ]
        in
        let _, positions =
          Path.eval_path c.cur_cache env { p_start = "__cursor"; p_steps = d.dep_path }
        in
        c.cur_positions <- positions
    end
  end

(** [next c] advances to the next live tuple and returns it; [None] at end
    of enumeration. A dependent cursor whose parent is unpositioned yields
    [None]. *)
let rec next c =
  Obs.Metrics.incr m_steps;
  refresh_dependent c;
  match c.cur_positions with
  | [] ->
    c.cur_current <- None;
    None
  | pos :: rest ->
    c.cur_positions <- rest;
    let ni = Cache.node c.cur_cache c.cur_node in
    let t = Cache.tuple ni pos in
    if t.Cache.t_live then begin
      c.cur_current <- Some pos;
      Some t
    end
    else next c

(** [current c] is the tuple the cursor is positioned on. *)
let current c =
  match c.cur_current with
  | None -> None
  | Some pos ->
    let ni = Cache.node c.cur_cache c.cur_node in
    let t = Cache.tuple ni pos in
    if t.Cache.t_live then Some t else None

(** [reset c] rewinds the cursor to before the first tuple. *)
let reset c =
  c.cur_current <- None;
  match c.cur_kind with
  | Independent { ind_order } -> c.cur_positions <- enumerate c.cur_cache c.cur_node ind_order
  | Dependent d ->
    (* force recomputation from the parent's current position *)
    d.dep_parent_pos <- None;
    c.cur_positions <- []

(** [node_name c] is the node this cursor ranges over. *)
let node_name c = c.cur_node

(** [iter f c] resets [c] and applies [f] to every enumerated tuple. *)
let iter f c =
  reset c;
  let rec go () =
    match next c with
    | Some t ->
      f t;
      go ()
    | None -> ()
  in
  go ()

(** [to_list c] resets [c] and collects the enumeration. *)
let to_list c =
  let acc = ref [] in
  iter (fun t -> acc := t :: !acc) c;
  List.rev !acc
