(* Path expressions over a loaded composite object (§3.5).

   A path denotes a subset of the tuples of its target node: the tuples
   reachable from the start designator along the named relationships, with
   qualified steps filtering intermediate tuples. Traversal direction is
   inferred per step — forward when the current node is the relationship's
   parent, backward when it is the child; cyclic relationships are
   disambiguated by explicit node steps (roles).

   SUCH THAT predicates are evaluated here too: they are SQL expressions
   extended with [COUNT(path)] and [EXISTS path] atoms, evaluated against
   an environment binding restriction variables to cache tuples. *)

open Relational
open Xnf_ast

exception Path_error of string

let err fmt = Fmt.kstr (fun s -> raise (Path_error s)) fmt

(** A variable binding: a specific tuple of a node. *)
type binding = { b_node : string; b_pos : int }

(** Evaluation environment: restriction / path variables. *)
type env = (string * binding) list

let resolve_col cache (env : env) qualifier name =
  let find_in (var, b) =
    let ni = Cache.node cache b.b_node in
    match Schema.find_opt ni.Cache.ni_schema name with
    | Some i -> Some (var, b, i)
    | None -> None
  in
  match qualifier with
  | Some q -> begin
    match List.assoc_opt (String.lowercase_ascii q) env with
    | Some b -> begin
      let ni = Cache.node cache b.b_node in
      match Schema.find_opt ni.Cache.ni_schema name with
      | Some i -> (b, i)
      | None -> err "[XNF007] no column %s in component %s" name b.b_node
    end
    | None -> err "[XNF014] unknown variable %s in path predicate" q
  end
  | None -> begin
    match List.filter_map find_in env with
    | [ (_, b, i) ] -> (b, i)
    | [] -> err "[XNF007] unknown column %s in path predicate" name
    | _ :: _ -> err "[XNF007] ambiguous column %s in path predicate" name
  end

(** [eval_xexpr cache env e] evaluates a SUCH THAT predicate expression;
    boolean results use 3VL encoding (Bool/Null) as in {!Expr.eval}. *)
let rec eval_xexpr cache (env : env) (e : xexpr) : Value.t =
  match e with
  | X_col (q, n) ->
    let b, i = resolve_col cache env q (String.lowercase_ascii n) in
    let ni = Cache.node cache b.b_node in
    Cache.col (Cache.tuple ni b.b_pos) i
  | X_lit v -> v
  | X_cmp (op, a, b) -> begin
    match Value.compare_sql (eval_xexpr cache env a) (eval_xexpr cache env b) with
    | None -> Value.Null
    | Some c ->
      let r =
        match op with
        | Expr.Eq -> c = 0
        | Expr.Ne -> c <> 0
        | Expr.Lt -> c < 0
        | Expr.Le -> c <= 0
        | Expr.Gt -> c > 0
        | Expr.Ge -> c >= 0
      in
      Value.Bool r
  end
  | X_arith (op, a, b) ->
    let op =
      match op with
      | Expr.Add -> `Add
      | Expr.Sub -> `Sub
      | Expr.Mul -> `Mul
      | Expr.Div -> `Div
      | Expr.Mod -> `Mod
    in
    Value.arith op (eval_xexpr cache env a) (eval_xexpr cache env b)
  | X_neg a -> begin
    match eval_xexpr cache env a with
    | Value.Int i -> Value.Int (-i)
    | Value.Float f -> Value.Float (-.f)
    | Value.Null -> Value.Null
    | v -> err "cannot negate %s" (Value.to_string v)
  end
  | X_and (a, b) ->
    Expr.value_of_truth
      (Value.truth_and (eval_pred cache env a) (eval_pred cache env b))
  | X_or (a, b) ->
    Expr.value_of_truth (Value.truth_or (eval_pred cache env a) (eval_pred cache env b))
  | X_not a -> Expr.value_of_truth (Value.truth_not (eval_pred cache env a))
  | X_is_null a -> Value.Bool (Value.is_null (eval_xexpr cache env a))
  | X_is_not_null a -> Value.Bool (not (Value.is_null (eval_xexpr cache env a)))
  | X_like (a, p) -> begin
    match eval_xexpr cache env a, eval_xexpr cache env p with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Str s, Value.Str pattern -> Value.Bool (Expr.like_match ~pattern s)
    | _ -> err "LIKE on non-strings"
  end
  | X_in_list (a, items) ->
    let v = eval_xexpr cache env a in
    if Value.is_null v then Value.Null
    else begin
      let rec go unknown = function
        | [] -> if unknown then Value.Null else Value.Bool false
        | item :: rest -> begin
          match Value.compare_sql v (eval_xexpr cache env item) with
          | Some 0 -> Value.Bool true
          | Some _ -> go unknown rest
          | None -> go true rest
        end
      in
      go false items
    end
  | X_fn (name, args) -> Expr.apply_fn name (List.map (eval_xexpr cache env) args)
  | X_count_path p ->
    let _, positions = eval_path cache env p in
    Value.Int (List.length positions)
  | X_exists_path p ->
    let _, positions = eval_path cache env p in
    Value.Bool (positions <> [])
  | X_param i -> err "unsubstituted parameter ?%d in SUCH THAT predicate" (i + 1)

and eval_pred cache env e = Expr.truth_of_value (eval_xexpr cache env e)

(** [eval_path cache env p] evaluates a path, returning the target node
    name and the distinct live positions it denotes. The start designator
    is a bound variable (tuple-rooted) or a node name (set-rooted). *)
and eval_path cache (env : env) (p : path) : string * int list =
  let start = String.lowercase_ascii p.p_start in
  let node_name, positions =
    match List.assoc_opt start env with
    | Some b -> (b.b_node, [ b.b_pos ])
    | None -> begin
      match Cache.node_opt cache start with
      | Some ni -> (start, List.map (fun t -> t.Cache.t_pos) (Cache.live_tuples ni))
      | None -> err "[XNF014] path start %s is neither a variable nor a component table" p.p_start
    end
  in
  List.fold_left (step cache env) (node_name, positions) p.p_steps

and step cache env (current_node, positions) s =
  match s with
  | Step_edge name -> begin
    (* the parser cannot distinguish bare node steps from edge steps; an
       edge lookup miss falls back to a node checkpoint *)
    match Cache.edge_opt cache name with
    | Some ei ->
      let target = ref current_node in
      let out =
        List.concat_map
          (fun pos ->
            let t, related = Cache.related cache ei ~from:current_node pos in
            target := t;
            related)
          positions
      in
      let target =
        (* empty position list: still resolve the target statically *)
        if positions = [] then
          (if String.equal (String.lowercase_ascii current_node) ei.Cache.ei_parent then
             ei.Cache.ei_child
           else ei.Cache.ei_parent)
        else !target
      in
      (target, List.sort_uniq compare out)
    | None -> begin
      match Cache.node_opt cache name with
      | Some _ ->
        step cache env (current_node, positions)
          (Step_node { sn_node = name; sn_var = None; sn_pred = None })
      | None -> err "[XNF013] unknown relationship or component %s in path" name
    end
  end
  | Step_node { sn_node; sn_var; sn_pred } -> begin
    let sn = String.lowercase_ascii sn_node in
    if not (String.equal sn (String.lowercase_ascii current_node)) then
      err "[XNF015] path step %s does not match current component %s" sn_node current_node;
    match sn_pred with
    | None -> (current_node, positions)
    | Some pred ->
      let var = Option.value ~default:sn sn_var in
      let keep pos =
        let env = (String.lowercase_ascii var, { b_node = sn; b_pos = pos }) :: env in
        Value.is_true (eval_pred cache env pred)
      in
      (current_node, List.filter keep positions)
  end

(** [eval_node_restriction cache ~node ~var pred] is the set of live
    positions of [node] satisfying [pred] (with [var] bound per tuple). *)
let eval_node_restriction cache ~node ~var pred =
  let ni = Cache.node cache node in
  let var = String.lowercase_ascii (Option.value ~default:node var) in
  List.filter_map
    (fun t ->
      let env = [ (var, { b_node = ni.Cache.ni_name; b_pos = t.Cache.t_pos }) ] in
      if Value.is_true (eval_pred cache env pred) then Some t.Cache.t_pos else None)
    (Cache.live_tuples ni)
