(* Semantic analysis for XNF: node and relationship updatability.

   The paper's view-update philosophy (§3.7): nodes derived like ordinary
   updatable views (single base table, column projection, restriction)
   propagate udi operations to their base table; relationships defined by a
   foreign-key equality support connect/disconnect by setting/nullifying
   the FK; M:N relationships built over a USING link table connect by
   inserting and disconnect by deleting the link tuple; anything else is
   readable but not updatable — definitions are never restricted to
   updatable ones. *)

open Relational

(** Updatability of a node: where its tuples come from and how output
    columns map to base columns. *)
type node_updatability = {
  nu_table : string;  (** base table name *)
  nu_col_map : int array;  (** node output column -> base column index *)
}

(** Updatability of a relationship. *)
type edge_updatability =
  | Upd_fk of {
      fk_parent_col : int;  (** parent node column supplying the key *)
      fk_child_col : int;  (** child node column holding the foreign key *)
    }
      (** 1:N relationship by FK equality: connect sets the child FK to the
          parent key, disconnect nullifies it *)
  | Upd_link of {
      link_table : string;
      parent_bind : (string * int) list;  (** (link column name, parent node col) *)
      child_bind : (string * int) list;  (** (link column name, child node col) *)
      attr_cols : (string * int) list;
          (** (link column name, attribute position): attributes drawn
              directly from the link table, settable at connect time *)
    }
      (** M:N relationship over a link table: connect inserts a link tuple,
          disconnect deletes it *)
  | Upd_readonly of string  (** reason the relationship is read-only *)

(* ---- node analysis ---- *)

(* A node query is updatable when it is a stack of star-selects (produced
   by restriction merging) over a single-table select whose items are plain
   columns or [*]. Returns the base table, column map and nothing else —
   predicates only filter and do not affect propagation. *)
let rec analyze_node_query catalog (q : Sql_ast.select) : node_updatability option =
  if q.Sql_ast.sel_distinct || q.Sql_ast.sel_group_by <> [] || q.Sql_ast.sel_having <> None
     || q.Sql_ast.sel_limit <> None || q.Sql_ast.sel_unions <> []
  then None
  else
    match q.Sql_ast.sel_from with
    | [ Sql_ast.From_table (table, _) ] -> begin
      match Catalog.table_opt catalog table with
      | None -> None (* a view, or unknown: not directly updatable *)
      | Some base -> begin
        let schema = Table.schema base in
        match q.Sql_ast.sel_items with
        | [ Sql_ast.Sel_star ] ->
          Some { nu_table = Table.name base; nu_col_map = Array.init (Schema.arity schema) Fun.id }
        | items -> begin
          let cols =
            List.map
              (function
                | Sql_ast.Sel_expr (Sql_ast.E_col (_, name), alias)
                  when (match alias with
                       | None -> true
                       | Some a -> String.lowercase_ascii a = String.lowercase_ascii name) ->
                  Schema.find_opt schema name
                | Sql_ast.Sel_star | Sql_ast.Sel_table_star _ | Sql_ast.Sel_expr _ -> None)
              items
          in
          if List.for_all Option.is_some cols then
            Some { nu_table = Table.name base; nu_col_map = Array.of_list (List.map Option.get cols) }
          else None
        end
      end
    end
    | [ Sql_ast.From_select (inner, _) ] -> begin
      (* restriction wrapper: SELECT * FROM (inner) v WHERE pred *)
      match q.Sql_ast.sel_items with
      | [ Sql_ast.Sel_star ] -> analyze_node_query catalog inner
      | _ -> None
    end
    | _ -> None

(* ---- edge analysis ---- *)

let qual_matches alias = function
  | Some q -> String.equal (String.lowercase_ascii q) (String.lowercase_ascii alias)
  | None -> false

(* classify a column reference within an edge predicate *)
let classify_col ~parent_alias ~child_alias ~using_alias (q, name) =
  if qual_matches parent_alias q then `Parent name
  else if qual_matches child_alias q then `Child name
  else
    match using_alias with
    | Some u when qual_matches u q -> `Using name
    | _ -> `Other

(** [analyze_edge catalog def parent_schema child_schema] derives the
    updatability of edge [def]; [parent_schema]/[child_schema] are the node
    output schemas (post TAKE-projection: a projected-away FK makes the
    edge read-only). *)
let analyze_edge catalog (def : Co_schema.edge_def) ~(parent_schema : Schema.t)
    ~(child_schema : Schema.t) : edge_updatability =
  let pa = def.Co_schema.ed_parent_alias and ca = def.Co_schema.ed_child_alias in
  let conjuncts =
    let rec split = function
      | Sql_ast.E_and (a, b) -> split a @ split b
      | e -> [ e ]
    in
    split def.Co_schema.ed_pred
  in
  let classify = classify_col ~parent_alias:pa ~child_alias:ca in
  match def.Co_schema.ed_using with
  | None -> begin
    (* FK form: exactly one equality parent.a = child.b *)
    match conjuncts with
    | [ Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) ] -> begin
      let a = classify ~using_alias:None (qa, na) and b = classify ~using_alias:None (qb, nb) in
      match a, b with
      | `Parent pn, `Child cn | `Child cn, `Parent pn -> begin
        match Schema.find_opt parent_schema pn, Schema.find_opt child_schema cn with
        | Some pi, Some ci -> Upd_fk { fk_parent_col = pi; fk_child_col = ci }
        | _ -> Upd_readonly "relationship columns projected away"
      end
      | _ -> Upd_readonly "predicate does not relate parent to child by equality"
    end
    | [ _ ] -> Upd_readonly "predicate is not a column equality"
    | _ -> Upd_readonly "composite predicate without USING table"
  end
  | Some (link_table, link_alias) -> begin
    match Catalog.table_opt catalog link_table with
    | None -> Upd_readonly (Printf.sprintf "USING table %s is not a base table" link_table)
    | Some link -> begin
      let link_schema = Table.schema link in
      let classify = classify ~using_alias:(Some link_alias) in
      let exception Not_updatable of string in
      try
        let parent_bind = ref [] and child_bind = ref [] in
        List.iter
          (fun conj ->
            match conj with
            | Sql_ast.E_cmp (Expr.Eq, Sql_ast.E_col (qa, na), Sql_ast.E_col (qb, nb)) -> begin
              match classify (qa, na), classify (qb, nb) with
              | `Using un, `Parent pn | `Parent pn, `Using un -> begin
                match Schema.find_opt link_schema un, Schema.find_opt parent_schema pn with
                | Some _, Some pi -> parent_bind := (un, pi) :: !parent_bind
                | _ -> raise (Not_updatable "binding column projected away")
              end
              | `Using un, `Child cn | `Child cn, `Using un -> begin
                match Schema.find_opt link_schema un, Schema.find_opt child_schema cn with
                | Some _, Some ci -> child_bind := (un, ci) :: !child_bind
                | _ -> raise (Not_updatable "binding column projected away")
              end
              | _ -> raise (Not_updatable "predicate mixes partners beyond link bindings")
            end
            | _ -> raise (Not_updatable "non-equality conjunct in USING predicate"))
          conjuncts;
        if !parent_bind = [] || !child_bind = [] then
          Upd_readonly "USING predicate does not bind both partners"
        else begin
          (* attributes drawn as plain link-table columns are settable *)
          let attr_cols =
            List.filteri
              (fun _ (_ : Sql_ast.expr * string) -> true)
              def.Co_schema.ed_attrs
            |> List.mapi (fun i (e, _) ->
                   match e with
                   | Sql_ast.E_col (q, n)
                     when qual_matches link_alias q && Schema.find_opt link_schema n <> None ->
                     Some (n, i)
                   | _ -> None)
            |> List.filter_map Fun.id
          in
          Upd_link { link_table = Table.name link; parent_bind = !parent_bind;
                     child_bind = !child_bind; attr_cols }
        end
      with Not_updatable reason -> Upd_readonly reason
    end
  end

(** [relationship_columns def ~parent_schema ~child_schema] is, per side,
    the node columns mentioned in the edge predicate — the columns whose
    direct update is forbidden (they change only through
    connect/disconnect, §3.7). Returns [(parent cols, child cols)]. *)
let relationship_columns (def : Co_schema.edge_def) ~(parent_schema : Schema.t)
    ~(child_schema : Schema.t) =
  let pa = def.Co_schema.ed_parent_alias and ca = def.Co_schema.ed_child_alias in
  let parent_cols = ref [] and child_cols = ref [] in
  let rec walk (e : Sql_ast.expr) =
    match e with
    | Sql_ast.E_col (q, n) ->
      if qual_matches pa q then
        Option.iter (fun i -> parent_cols := i :: !parent_cols) (Schema.find_opt parent_schema n)
      else if qual_matches ca q then
        Option.iter (fun i -> child_cols := i :: !child_cols) (Schema.find_opt child_schema n)
    | Sql_ast.E_lit _ | Sql_ast.E_count_star | Sql_ast.E_param _ -> ()
    | Sql_ast.E_cmp (_, a, b) | Sql_ast.E_arith (_, a, b) | Sql_ast.E_and (a, b)
    | Sql_ast.E_or (a, b) | Sql_ast.E_like (a, b) ->
      walk a;
      walk b
    | Sql_ast.E_neg a | Sql_ast.E_not a | Sql_ast.E_is_null a | Sql_ast.E_is_not_null a -> walk a
    | Sql_ast.E_in_list (a, items) ->
      walk a;
      List.iter walk items
    | Sql_ast.E_case (branches, else_) ->
      List.iter
        (fun (c, r) ->
          walk c;
          walk r)
        branches;
      Option.iter walk else_
    | Sql_ast.E_fn (_, args) -> List.iter walk args
    | Sql_ast.E_fn_distinct (_, a) -> walk a
    | Sql_ast.E_exists _ | Sql_ast.E_in_query _ | Sql_ast.E_scalar _ -> ()
  in
  walk def.Co_schema.ed_pred;
  (List.sort_uniq compare !parent_cols, List.sort_uniq compare !child_cols)
