(* Prepared CO fetch plans (§4.3, compile-once).

   A fetch plan is the reusable half of evaluating an XNF query: the
   composed CO definition, its residual path-based restrictions, the TAKE
   clause, and the [Translate.compiled] form (node shape analysis,
   per-edge access-path selection). Compiling is pure analysis — no base
   data is touched — so one plan serves any number of executions,
   including parameterized ones ([?] slots bound at EXECUTE time).

   A plan is only as durable as what it was compiled against. Three
   version counters are recorded at compile time and checked before
   reuse: the XNF view-registry version (view redefinition changes
   composition), the catalog version (base-table / tabular-view DDL
   changes binding and shapes) and the global index epoch (index
   creation/drop changes access-path selection). Validation is the
   caller's job ([valid]); the plan itself is immutable apart from its
   hit counter. *)

open Relational
open Xnf_ast

type t = {
  fp_text : string;  (** canonical query text (re-parsable) *)
  fp_query : query;
  fp_def : Co_schema.t;  (** composed, pre-TAKE definition *)
  fp_compiled : Translate.compiled;
  fp_path_restrs : restriction list;
  fp_take : take;
  fp_nparams : int;  (** number of [?] parameter slots *)
  fp_reg_version : int;
  fp_catalog_version : int;
  fp_index_epoch : int;
  mutable fp_hits : int;  (** times this plan was served from a cache *)
}

let m_compiles = Obs.Metrics.counter "xnf.plan.compiles"

(** [compile db reg q] composes and compiles [q] into a plan, recording
    the registry/catalog/index versions it is valid against. *)
let compile db reg (q : query) : t =
  Obs.Metrics.incr m_compiles;
  let def, path_restrs, take =
    Obs.Trace.with_span "semantic" (fun () -> View_registry.compose reg q)
  in
  let compiled = Translate.compile_def ~take db def in
  { fp_text = Xnf_ast.query_to_string q;
    fp_query = q;
    fp_def = def;
    fp_compiled = compiled;
    fp_path_restrs = path_restrs;
    fp_take = take;
    fp_nparams = Xnf_ast.count_params_query q;
    fp_reg_version = View_registry.version reg;
    fp_catalog_version = Catalog.version (Db.catalog db);
    fp_index_epoch = Index.epoch ();
    fp_hits = 0 }

(** [valid db reg plan] holds when nothing the plan depends on has
    changed since compilation. *)
let valid db reg (plan : t) =
  plan.fp_reg_version = View_registry.version reg
  && plan.fp_catalog_version = Catalog.version (Db.catalog db)
  && plan.fp_index_epoch = Index.epoch ()

(** [execute ?fixpoint ?params db plan] runs the plan to a loaded cache:
    fixpoint evaluation, path restrictions, TAKE projection and final
    updatability analysis.
    @raise Invalid_argument on a parameter-count mismatch. *)
let execute ?fixpoint ?(params = [||]) db (plan : t) : Cache.t =
  if Array.length params <> plan.fp_nparams then
    invalid_arg
      (Printf.sprintf "prepared plan expects %d parameter(s), got %d" plan.fp_nparams
         (Array.length params));
  Obs.Trace.with_span "xnf.fetch" @@ fun () ->
  Translate.finalize_plan db plan.fp_compiled
    (Translate.apply_take
       (Translate.execute_def ?fixpoint ~params db plan.fp_compiled plan.fp_path_restrs)
       plan.fp_take)

let text plan = plan.fp_text
let query plan = plan.fp_query
let def plan = plan.fp_def
let compiled plan = plan.fp_compiled
let take plan = plan.fp_take
let path_restrs plan = plan.fp_path_restrs
let nparams plan = plan.fp_nparams
let hits plan = plan.fp_hits
let note_hit plan = plan.fp_hits <- plan.fp_hits + 1
let reg_version plan = plan.fp_reg_version
let catalog_version plan = plan.fp_catalog_version
let index_epoch plan = plan.fp_index_epoch

(** [strategies plan] is the access path selected per relationship at
    compile time. *)
let strategies plan = Translate.edge_strategies plan.fp_compiled

(** [effective_strategies plan] is {!strategies} with adaptive
    mid-fixpoint switches from the plan's most recent execution applied. *)
let effective_strategies plan = Translate.effective_strategies plan.fp_compiled

(** [switches plan] lists the adaptive strategy switches recorded on the
    plan (at most one per edge, latest execution wins). *)
let switches plan = Translate.switches plan.fp_compiled

(** [cost_based plan] is true when access-path selection came from the
    shared cost model (fresh stats on every base table, no [?force]). *)
let cost_based plan = Translate.cost_based plan.fp_compiled

(** [describe plan] is a one-line summary for [\plans], including the
    selected per-edge access paths (adaptive switches rendered as
    [from->to]). *)
let describe plan =
  let switched = switches plan in
  let strats =
    match strategies plan with
    | [] -> ""
    | ss ->
      " edges="
      ^ String.concat ","
          (List.map
             (fun (n, s) ->
               match List.find_opt (fun sw -> sw.Translate.sw_edge = n) switched with
               | Some sw ->
                 Printf.sprintf "%s:%s->%s" n
                   (Translate.strategy_name s)
                   (Translate.strategy_name sw.Translate.sw_to)
               | None -> Printf.sprintf "%s:%s" n (Translate.strategy_name s))
             ss)
  in
  Printf.sprintf "params=%d hits=%d reg=v%d cat=v%d idx=e%d%s%s | %s" plan.fp_nparams plan.fp_hits
    plan.fp_reg_version plan.fp_catalog_version plan.fp_index_epoch
    (if cost_based plan then " cost" else "")
    strats plan.fp_text
