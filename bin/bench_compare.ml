(* Benchmark baseline gate.

   Compares a fresh metrics snapshot (produced by `bench --json`) against
   a committed baseline (BENCH_seed.json) and exits non-zero on
   regression. Only keys prefixed "bench." are gated — the snapshot
   carries every registry metric, but experiments publish their contract
   under the bench.* namespace on purpose:

   - counters must match exactly (they encode deterministic behavior,
     e.g. "the warm loop hit the plan cache once per repetition");
   - gauges must lie within a relative tolerance of the baseline value
     (default +/-30%, `--tolerance 0.5` for +/-50%);
   - bench.* keys present on only ONE side are hard failures in both
     directions: a baseline key missing from the fresh run means an
     experiment silently stopped publishing, a fresh key missing from
     the baseline means a new metric is riding ungated. `--allow-missing`
     downgrades both to warnings (for bootstrapping a new baseline —
     value mismatches still fail);
   - `--min KEY=VAL` (repeatable) additionally enforces an absolute
     floor on a fresh value, e.g. `--min bench.e11.warm_speedup=2`.
     An explicitly demanded floor whose key is absent always fails,
     even under --allow-missing;
   - `--max KEY=VAL` (repeatable) mirrors `--min` as an absolute
     ceiling, e.g. `--max bench.e12.alloc_bytes_per_probe=684` pins a
     per-probe allocation budget that must never regress upward.

   Usage: bench_compare BASELINE FRESH [--tolerance T] [--allow-missing]
                        [--min KEY=VAL]... [--max KEY=VAL]... *)

type json =
  | J_num of float
  | J_str of string
  | J_bool of bool
  | J_null
  | J_obj of (string * json) list
  | J_arr of json list

exception Parse_error of string

(* minimal recursive-descent JSON reader — the input is machine-written
   by Obs.Metrics.to_json, so no streaming or error recovery needed *)
let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          if !pos >= n then fail "unterminated escape"
          else begin
            let e = s.[!pos] in
            advance ();
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
              (* baseline keys are ASCII; keep the escape verbatim *)
              Buffer.add_string b "\\u"
            | _ -> fail "bad escape");
            go ()
          end
        | c ->
          Buffer.add_char b c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        J_obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        J_arr (List.rev !items)
      end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some ('0' .. '9' | '-') -> J_num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* numeric entries of one top-level section ("counters" / "gauges") *)
let section (j : json) name : (string * float) list =
  match j with
  | J_obj fields -> begin
    match List.assoc_opt name fields with
    | Some (J_obj entries) ->
      List.filter_map (fun (k, v) -> match v with J_num f -> Some (k, f) | _ -> None) entries
    | _ -> []
  end
  | _ -> []

let is_bench key =
  String.length key >= 6 && String.sub key 0 6 = "bench."

let () =
  let baseline_path = ref None in
  let fresh_path = ref None in
  let tolerance = ref 0.3 in
  let allow_missing = ref false in
  let mins : (string * float) list ref = ref [] in
  let maxs : (string * float) list ref = ref [] in
  let usage () =
    prerr_endline
      "usage: bench_compare BASELINE FRESH [--tolerance T] [--allow-missing] [--min KEY=VAL]... \
       [--max KEY=VAL]...";
    exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--allow-missing" :: rest ->
      allow_missing := true;
      parse_args rest
    | "--tolerance" :: v :: rest -> begin
      match float_of_string_opt v with
      | Some t when t >= 0. ->
        tolerance := t;
        parse_args rest
      | _ -> usage ()
    end
    | (("--min" | "--max") as flag) :: kv :: rest -> begin
      match String.index_opt kv '=' with
      | Some i -> begin
        let k = String.sub kv 0 i in
        match float_of_string_opt (String.sub kv (i + 1) (String.length kv - i - 1)) with
        | Some v ->
          let dst = if flag = "--min" then mins else maxs in
          dst := (k, v) :: !dst;
          parse_args rest
        | None -> usage ()
      end
      | None -> usage ()
    end
    | a :: _ when String.length a > 0 && a.[0] = '-' -> usage ()
    | a :: rest ->
      (if !baseline_path = None then baseline_path := Some a
       else if !fresh_path = None then fresh_path := Some a
       else usage ());
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match (!baseline_path, !fresh_path) with Some b, Some f -> (b, f) | _ -> usage ()
  in
  let load path =
    try parse_json (read_file path) with
    | Sys_error e ->
      Printf.eprintf "bench_compare: %s\n" e;
      exit 2
    | Parse_error e ->
      Printf.eprintf "bench_compare: %s: %s\n" path e;
      exit 2
  in
  let base = load baseline_path and fresh = load fresh_path in
  let failures = ref 0 in
  let ok fmt = Printf.printf ("  ok    " ^^ fmt ^^ "\n") in
  let bad fmt =
    incr failures;
    Printf.printf ("  FAIL  " ^^ fmt ^^ "\n")
  in
  (* missing bench.* keys: hard failure unless --allow-missing *)
  let miss fmt =
    if !allow_missing then Printf.printf ("  warn  " ^^ fmt ^^ " (--allow-missing)\n")
    else bad fmt
  in
  Printf.printf "bench gate: %s vs %s (gauges within %.0f%%, counters exact)\n" baseline_path
    fresh_path (!tolerance *. 100.);
  (* counters: deterministic behavior, exact equality *)
  let base_counters = section base "counters" in
  let fresh_counters = section fresh "counters" in
  List.iter
    (fun (k, bv) ->
      if is_bench k then
        match List.assoc_opt k fresh_counters with
        | None -> miss "%-34s missing from fresh run" k
        | Some fv when fv = bv -> ok "%-34s %.0f = %.0f" k bv fv
        | Some fv -> bad "%-34s expected %.0f, got %.0f" k bv fv)
    base_counters;
  (* gauges: timings and ratios, relative tolerance band *)
  let base_gauges = section base "gauges" in
  let fresh_gauges = section fresh "gauges" in
  List.iter
    (fun (k, bv) ->
      if is_bench k then
        match List.assoc_opt k fresh_gauges with
        | None -> miss "%-34s missing from fresh run" k
        | Some fv ->
          let drift = if bv = 0. then abs_float fv else abs_float (fv -. bv) /. abs_float bv in
          let signed = if bv = 0. then fv else (fv -. bv) /. bv *. 100. in
          if drift <= !tolerance then ok "%-34s %.4g -> %.4g (%+.1f%%)" k bv fv signed
          else
            bad "%-34s %.4g -> %.4g (%+.1f%% > %.0f%%)" k bv fv
              ((fv -. bv) /. bv *. 100.) (!tolerance *. 100.))
    base_gauges;
  (* fresh bench.* keys the baseline does not know: a new or renamed
     metric would otherwise ride ungated forever *)
  List.iter
    (fun (known, fresh_section) ->
      List.iter
        (fun (k, _) ->
          if is_bench k && not (List.mem_assoc k known) then
            miss "%-34s missing from baseline (regenerate BENCH_seed.json)" k)
        fresh_section)
    [ (base_counters, fresh_counters); (base_gauges, fresh_gauges) ];
  (* absolute floors, e.g. --min bench.e11.warm_speedup=2 *)
  List.iter
    (fun (k, floor_v) ->
      match (List.assoc_opt k fresh_gauges, List.assoc_opt k fresh_counters) with
      | Some fv, _ | None, Some fv ->
        if fv >= floor_v then ok "%-34s %.4g >= %.4g" k fv floor_v
        else bad "%-34s %.4g < %.4g" k fv floor_v
      | None, None -> bad "%-34s missing from fresh run" k)
    (List.rev !mins);
  (* absolute ceilings, e.g. --max bench.e12.alloc_bytes_per_probe=684 *)
  List.iter
    (fun (k, ceil_v) ->
      match (List.assoc_opt k fresh_gauges, List.assoc_opt k fresh_counters) with
      | Some fv, _ | None, Some fv ->
        if fv <= ceil_v then ok "%-34s %.4g <= %.4g" k fv ceil_v
        else bad "%-34s %.4g > %.4g" k fv ceil_v
      | None, None -> bad "%-34s missing from fresh run" k)
    (List.rev !maxs);
  if !failures > 0 then begin
    Printf.printf "bench gate: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "bench gate: pass"
