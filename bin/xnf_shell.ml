(* Interactive SQL/XNF shell.

     dune exec bin/xnf_shell.exe                 -- empty database
     dune exec bin/xnf_shell.exe -- --demo       -- company demo database
     dune exec bin/xnf_shell.exe -- -f script.sql

   Accepts plain SQL and XNF statements (the shared-database architecture
   of Fig. 7 at the prompt). Meta commands:

     \d               list tables and views
     \co              list XNF views
     \explain <sql>   show rewritten QGM and physical plan
     \fetch <query>   load a CO and keep it as the current cache
     \show            print the current cache
     \stats           translation statistics of the last fetch
     \lint <query>    statically check an XNF/SQL statement, report diagnostics
     \advise <query>  static plan advisor: cost-annotated plan + PLAN3xx advisories
     \advisories      show the session advisory log (sys.advisories)
     \check on|off    toggle the pipeline invariant validators
     \metrics [p]     dump nonzero metrics, optionally filtered to prefix p
                      (\metrics json / \metrics prom render the registry)
     \slowlog [ms]    show or set the slow-query threshold (\slowlog off)
     \plans           list cached fetch plans and prepared statements
     \trace           print the span tree of the last traced statement
     \walk <edge>     cursor-walk the current cache across <edge>
     \export <t> <f>  write table t to CSV file f
     \import <t> <f>  bulk-load CSV file f into table t
     \checkpoint      snapshot the session to the data dir, truncate the WAL
     \recover         rebuild the session from the data dir (checkpoint + WAL)
     \q               quit

   EXPLAIN ANALYZE <query> (XNF or SQL SELECT) runs the statement under
   the instrumented executor and prints per-stage timings plus
   per-operator row counts. EXPLAIN ADVISE <query> compiles (but never
   runs) an OUT OF ... TAKE query and prints the static plan advisor's
   cost annotations and PLAN3xx advisories. *)

open Relational

let print_result = function
  | Db.Rows { Db.rschema; rrows } ->
    let cols = List.map (fun c -> c.Schema.col_name) (Schema.columns rschema) in
    Fmt.pr "%s@." (String.concat " | " cols);
    Fmt.pr "%s@." (String.make (max 10 (String.length (String.concat " | " cols))) '-');
    List.iter
      (fun row ->
        Fmt.pr "%s@."
          (String.concat " | " (List.map Value.to_string (Array.to_list row))))
      rrows;
    Fmt.pr "(%d rows)@." (List.length rrows)
  | Db.Affected n -> Fmt.pr "%d rows affected@." n
  | Db.Done msg -> Fmt.pr "%s@." msg

let print_outcome current = function
  | Xnf.Api.Fetched cache ->
    current := Some cache;
    Fmt.pr "%a" Xnf.Cache.pp cache
  | Xnf.Api.Co_deleted n -> Fmt.pr "composite object deleted: %d base rows removed@." n
  | Xnf.Api.Co_updated n -> Fmt.pr "composite object updated: %d component tuples changed@." n
  | Xnf.Api.View_defined name -> Fmt.pr "XNF view %s defined@." name
  | Xnf.Api.View_dropped name -> Fmt.pr "view %s dropped@." name
  | Xnf.Api.Prepared name -> Fmt.pr "prepared statement %s ready@." name
  | Xnf.Api.Sql r -> print_result r

let load_demo api =
  let db = Xnf.Api.db api in
  Workload.Company.populate db ~seed:1 ~scale:Workload.Company.small
    ~repr:Workload.Company.Cdb1;
  Workload.Company.register_views api ~repr:Workload.Company.Cdb1;
  Fmt.pr "demo company database loaded; XNF views: ALL-DEPS, ALL-DEPS-ORG, EXT-ALL-DEPS-ORG, ORG-UNIT@."

let handle_meta api current line =
  let db = Xnf.Api.db api in
  let strip prefix =
    String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix))
  in
  if line = "\\q" then exit 0
  else if line = "\\d" then begin
    Fmt.pr "tables:@.";
    List.iter (fun n -> Fmt.pr "  %s@." n) (Catalog.table_names (Db.catalog db));
    Fmt.pr "system views:@.";
    List.iter (fun n -> Fmt.pr "  %s@." n) (Catalog.virtual_names (Db.catalog db))
  end
  else if line = "\\co" then begin
    Fmt.pr "XNF views:@.";
    List.iter (fun n -> Fmt.pr "  %s@." n) (Xnf.View_registry.names (Xnf.Api.registry api))
  end
  else if String.length line > 9 && String.sub line 0 9 = "\\explain " then
    Fmt.pr "%s@." (Db.explain db (strip "\\explain "))
  else if String.length line > 6 && String.sub line 0 6 = "\\lint " then begin
    let src = strip "\\lint " in
    match Check.Lint.lint_string db (Xnf.Api.registry api) src with
    | [] -> Fmt.pr "no diagnostics@."
    | ds ->
      Fmt.pr "%a" Diag.pp_list (Diag.sort ds);
      Fmt.pr "%d error(s), %d warning(s)@." (Diag.count_errors ds) (Diag.count_warnings ds)
  end
  else if String.length line > 8 && String.sub line 0 8 = "\\advise " then begin
    match Check.Plan_advisor.advise_text api (strip "\\advise ") with
    | Ok rp -> Fmt.pr "%s%!" (Check.Plan_advisor.render rp)
    | Error ds -> Fmt.pr "%a" Diag.pp_list (Diag.sort ds)
  end
  else if line = "\\advisories" then begin
    match Xnf.Api.advisories api with
    | [] -> Fmt.pr "no advisories logged@."
    | advs ->
      List.iter
        (fun (a : Xnf.Api.advisory) ->
          Fmt.pr "#%d [%s] %s[%s]: %s@." a.Xnf.Api.adv_seq a.Xnf.Api.adv_source
            a.Xnf.Api.adv_severity a.Xnf.Api.adv_code a.Xnf.Api.adv_message)
        (List.rev advs)
  end
  else if line = "\\check on" then begin
    Check.Pipeline.install ();
    Fmt.pr "pipeline invariant validators enabled@."
  end
  else if line = "\\check off" then begin
    Check.Pipeline.uninstall ();
    Fmt.pr "pipeline invariant validators disabled@."
  end
  else if line = "\\check" then
    Fmt.pr "pipeline invariant validators are %s@."
      (if Check.Pipeline.installed () then "on" else "off")
  else if String.length line > 7 && String.sub line 0 7 = "\\fetch " then begin
    Xnf.Translate.reset_stats ();
    let cache = Xnf.Api.fetch_string api (strip "\\fetch ") in
    current := Some cache;
    Fmt.pr "%a" Xnf.Cache.pp cache
  end
  else if line = "\\show" then begin
    match !current with
    | Some cache -> Fmt.pr "%a" Xnf.Cache.pp cache
    | None -> Fmt.pr "no composite object loaded (use \\fetch)@."
  end
  else if String.length line > 8 && String.sub line 0 8 = "\\export " then begin
    match String.split_on_char ' ' (strip "\\export ") with
    | [ table; path ] ->
      Csv_io.export_file (Catalog.table (Db.catalog db) table) path;
      Fmt.pr "exported %s to %s@." table path
    | _ -> Fmt.pr "usage: \\export <table> <file>@."
  end
  else if String.length line > 8 && String.sub line 0 8 = "\\import " then begin
    match String.split_on_char ' ' (strip "\\import ") with
    | [ table; path ] ->
      let n = Csv_io.import_file db (Catalog.table (Db.catalog db) table) path in
      Fmt.pr "imported %d rows into %s@." n table
    | _ -> Fmt.pr "usage: \\import <table> <file>@."
  end
  else if line = "\\metrics json" then Fmt.pr "%s@." (Obs.Metrics.to_json ())
  else if line = "\\metrics prom" then Fmt.pr "%s@." (Obs.Metrics.to_prometheus ())
  else if line = "\\metrics" then Fmt.pr "%a" (Obs.Metrics.dump ?prefix:None) ()
  else if String.length line > 9 && String.sub line 0 9 = "\\metrics " then
    Fmt.pr "%a" (Obs.Metrics.dump ~prefix:(strip "\\metrics ")) ()
  else if line = "\\slowlog" then begin
    match Obs.Query_stats.slowlog_ms () with
    | Some ms -> Fmt.pr "slow-query threshold: %.3f ms@." ms
    | None -> Fmt.pr "slow-query log disabled@."
  end
  else if line = "\\slowlog off" then begin
    Obs.Query_stats.set_slowlog_ms None;
    Fmt.pr "slow-query log disabled@."
  end
  else if String.length line > 9 && String.sub line 0 9 = "\\slowlog " then begin
    match float_of_string_opt (strip "\\slowlog ") with
    | Some ms when ms >= 0. ->
      Obs.Query_stats.set_slowlog_ms (Some ms);
      Fmt.pr "slow-query threshold set to %.3f ms@." ms
    | _ -> Fmt.pr "usage: \\slowlog <ms> | \\slowlog off@."
  end
  else if line = "\\trace" then begin
    match Obs.Trace.last () with
    | Some sp -> Fmt.pr "%s@." (Obs.Trace.to_string sp)
    | None -> Fmt.pr "no trace recorded yet@."
  end
  else if String.length line > 6 && String.sub line 0 6 = "\\walk " then begin
    match !current with
    | None -> Fmt.pr "no composite object loaded (use \\fetch)@."
    | Some cache -> begin
      match Xnf.Cache.edge_opt cache (strip "\\walk ") with
      | None -> Fmt.pr "unknown relationship %s@." (strip "\\walk ")
      | Some ei ->
        (* the E1-style browsing pattern: step the parent, expand children *)
        let parent = Xnf.Cursor.open_independent cache ei.Xnf.Cache.ei_parent in
        let child = Xnf.Cursor.open_dependent ~parent (Xnf.Cursor.via ei.Xnf.Cache.ei_name) in
        let steps = ref 0 and hits = ref 0 in
        Xnf.Cursor.iter
          (fun _ ->
            incr steps;
            Xnf.Cursor.iter (fun _ -> incr hits) child)
          parent;
        Fmt.pr "walked %d %s tuples, %d %s tuples via %s@." !steps
          ei.Xnf.Cache.ei_parent !hits ei.Xnf.Cache.ei_child ei.Xnf.Cache.ei_name
    end
  end
  else if line = "\\plans" then begin
    (match Xnf.Api.plans api with
    | [] -> Fmt.pr "plan cache empty@."
    | ps ->
      Fmt.pr "plan cache (most recently used first):@.";
      List.iter (fun (_, p) -> Fmt.pr "  %s@." (Xnf.Fetch_plan.describe p)) ps);
    match Xnf.Api.prepared_plans api with
    | [] -> ()
    | ps ->
      Fmt.pr "prepared statements:@.";
      List.iter (fun (n, p) -> Fmt.pr "  %-16s %s@." n (Xnf.Fetch_plan.describe p)) ps
  end
  else if line = "\\checkpoint" then begin
    match Db.data_dir db with
    | None -> Fmt.pr "no data directory (start the shell with --data DIR)@."
    | Some dir -> begin
      try
        let lsn = Xnf.Api.checkpoint api in
        Fmt.pr "checkpoint written to %s (lsn %d), wal truncated@." dir lsn
      with Db.Exec_error msg -> Fmt.pr "checkpoint failed: %s@." msg
    end
  end
  else if line = "\\recover" then begin
    match Db.data_dir db with
    | None -> Fmt.pr "no data directory (start the shell with --data DIR)@."
    | Some dir -> begin
      try
        let st = Xnf.Api.recover api in
        current := None;
        Fmt.pr
          "recovered from %s: checkpoint lsn %d, %d wal record(s) replayed, %d torn byte(s) truncated@."
          dir st.Db.rs_checkpoint_lsn st.Db.rs_replayed st.Db.rs_truncated_bytes
      with Db.Exec_error msg -> Fmt.pr "recover failed: %s@." msg
    end
  end
  else if line = "\\stats" then begin
    let s = Xnf.Translate.stats in
    Fmt.pr "queries issued: %d, fixpoint rounds: %d, tuples probed: %d@."
      s.Xnf.Translate.queries_issued s.Xnf.Translate.fixpoint_rounds s.Xnf.Translate.tuples_probed;
    Fmt.pr "indexed probers: %d, generic probers: %d@." s.Xnf.Translate.indexed_probes
      s.Xnf.Translate.generic_probes
  end
  else Fmt.pr "unknown command %s@." line

let run_line api current line =
  let line = String.trim line in
  if line = "" then ()
  else if line.[0] = '\\' then handle_meta api current line
  else if String.length line > 16 && String.lowercase_ascii (String.sub line 0 16) = "explain analyze " then begin
    let body = String.trim (String.sub line 16 (String.length line - 16)) in
    try Fmt.pr "%s@." (Xnf.Api.explain_analyze api body) with
    | Sql_lexer.Parse_error msg -> Fmt.pr "parse error: %s@." msg
    | Binder.Bind_error msg -> Fmt.pr "semantic error: %s@." msg
    | Xnf.Api.Api_error msg -> Fmt.pr "error: %s@." msg
    | Xnf.Translate.Translate_error msg -> Fmt.pr "translation error: %s@." msg
  end
  else if String.length line > 15 && String.lowercase_ascii (String.sub line 0 15) = "explain advise " then begin
    let body = String.trim (String.sub line 15 (String.length line - 15)) in
    match Check.Plan_advisor.advise_text api body with
    | Ok rp -> Fmt.pr "%s%!" (Check.Plan_advisor.render rp)
    | Error ds -> Fmt.pr "%a" Diag.pp_list (Diag.sort ds)
  end
  else
    try print_outcome current (Xnf.Api.exec api line) with
    | Sql_lexer.Parse_error msg -> Fmt.pr "parse error: %s@." msg
    | Binder.Bind_error msg -> Fmt.pr "semantic error: %s@." msg
    | Db.Exec_error msg -> Fmt.pr "execution error: %s@." msg
    | Xnf.Co_schema.Schema_error msg -> Fmt.pr "CO schema error: %s@." msg
    | Xnf.View_registry.View_error msg -> Fmt.pr "view error: %s@." msg
    | Xnf.Translate.Translate_error msg -> Fmt.pr "translation error: %s@." msg
    | Xnf.Cache.Cache_error msg -> Fmt.pr "cache error: %s@." msg
    | Xnf.Api.Api_error msg -> Fmt.pr "error: %s@." msg
    | Txn.Txn_error msg -> Fmt.pr "transaction error: %s@." msg
    | Catalog.Unknown_table t -> Fmt.pr "unknown table: %s@." t
    | Catalog.Duplicate_name n -> Fmt.pr "duplicate name: %s@." n
    | Check.Pipeline.Invariant_violation ds ->
      Fmt.pr "internal invariant violation:@.%a" Diag.pp_list ds

let repl api =
  let current = ref None in
  Fmt.pr "SQL/XNF shell — \\q quits, \\d lists tables, \\co lists XNF views, \\metrics and \\trace observe@.";
  try
    while true do
      Fmt.pr "xnf> %!";
      let line = input_line stdin in
      run_line api current line
    done
  with End_of_file -> ()

let run_file api path =
  let current = ref None in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          let line = String.trim line in
          if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "--") then begin
            Fmt.pr "xnf> %s@." line;
            run_line api current line
          end
        done
      with End_of_file -> ())

(* Batch linter over a statement file: lint every non-comment line,
   print diagnostics with their line number, exit nonzero when any
   error-severity diagnostic is found. Clean CREATE VIEW statements are
   registered so later statements can import them. *)
let lint_file api ~json path =
  let db = Xnf.Api.db api in
  let reg = Xnf.Api.registry api in
  let ic = open_in path in
  let errors = ref 0 and warnings = ref 0 and stmts = ref 0 and lineno = ref 0 in
  let collected = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          incr lineno;
          if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "--") then begin
            incr stmts;
            let ds = Check.Lint.lint_string db reg line in
            errors := !errors + Diag.count_errors ds;
            warnings := !warnings + Diag.count_warnings ds;
            if json then collected := !collected @ ds
            else List.iter (fun d -> Fmt.pr "%s:%d: %a@." path !lineno Diag.pp d) (Diag.sort ds);
            if not (Diag.has_errors ds) then begin
              match Xnf.Xnf_parser.parse_stmt line with
              | Xnf.Xnf_ast.X_create_view _ -> ignore (Xnf.Api.exec api line)
              | _ | (exception _) -> ()
            end
          end
        done
      with End_of_file -> ());
  if json then Fmt.pr "%s@." (Diag.to_json !collected)
  else Fmt.pr "%s: %d statement(s), %d error(s), %d warning(s)@." path !stmts !errors !warnings;
  if !errors > 0 then exit 1

(* Batch plan advisor over a statement file. Non-query statements (DDL,
   DML, CREATE XNF VIEW, ANALYZE) are EXECUTED so the catalog, indexes
   and statistics evolve exactly as they would in a session; every
   OUT OF ... TAKE query is compiled fresh and advised, never run. Exit
   status 1 on any error-severity diagnostic (including failed
   statements), 0 for clean or warnings/info-only runs. *)
let advise_file api ~json path =
  let ic = open_in path in
  let errors = ref 0 and warnings = ref 0 and advised = ref 0 and lineno = ref 0 in
  let collected = ref [] in
  let report ?(loc = true) ds =
    errors := !errors + Diag.count_errors ds;
    warnings := !warnings + Diag.count_warnings ds;
    if json then collected := !collected @ ds
    else
      List.iter
        (fun d ->
          if loc then Fmt.pr "%s:%d: %a@." path !lineno Diag.pp d else Fmt.pr "%a@." Diag.pp d)
        (Diag.sort ds)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          incr lineno;
          if line <> "" && not (String.length line >= 2 && String.sub line 0 2 = "--") then begin
            let is_query =
              match Xnf.Xnf_parser.parse_stmt line with
              | Xnf.Xnf_ast.X_query _ -> true
              | _ | (exception _) -> false
            in
            if is_query then begin
              incr advised;
              match Check.Plan_advisor.advise_text api line with
              | Ok rp -> report (Check.Plan_advisor.diags rp)
              | Error ds -> report ds
            end
            else
              try ignore (Xnf.Api.exec api line)
              with e ->
                report
                  [ Diag.err ~code:"XNF000"
                      (Printf.sprintf "statement failed: %s" (Printexc.to_string e)) ]
          end
        done
      with End_of_file -> ());
  if json then Fmt.pr "%s@." (Diag.to_json !collected)
  else
    Fmt.pr "%s: %d quer(y/ies) advised, %d error(s), %d warning(s)@." path !advised !errors
      !warnings;
  if !errors > 0 then exit 1

let main demo lint advise json data file =
  (* cmdliner also fills [data] from XNF_DATA_DIR; an empty value means
     "not durable" either way *)
  let data_dir = match data with Some "" | None -> None | some -> some in
  let db = Db.create ?data_dir () in
  let api = Xnf.Api.create db in
  (match data_dir with
  | Some dir when lint = None && advise = None -> Fmt.pr "durable session: %s@." dir
  | _ -> ());
  (* keep a few recent fetch results so repeated OUT OF queries hit the
     cache (observable via \metrics as the xnf.fetchcache counters), and
     cache compiled fetch plans across result-cache misses (\plans,
     xnf.plancache counters) *)
  Xnf.Api.set_result_cache api 8;
  Xnf.Api.set_plan_cache api 32;
  (* estimate-vs-actual drift detection on every plan-executed fetch,
     surfaced via \advisories and the sys.advisories view *)
  Check.Plan_advisor.install api;
  ignore (Check.Pipeline.install_from_env ());
  if demo then load_demo api;
  match (lint, advise, file) with
  | Some path, _, _ -> lint_file api ~json path
  | None, Some path, _ -> advise_file api ~json path
  | None, None, Some path -> run_file api path
  | None, None, None -> repl api

let cmd =
  let open Cmdliner in
  let demo =
    Arg.(value & flag & info [ "demo" ] ~doc:"Preload the demo company database and XNF views.")
  in
  let file =
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE"
           ~doc:"Execute statements from $(docv) instead of reading stdin.")
  in
  let lint =
    Arg.(value & opt (some string) None & info [ "lint" ] ~docv:"FILE"
           ~doc:"Statically check every statement in $(docv) and exit; nonzero exit status \
                 when any error-severity diagnostic is reported.")
  in
  let advise =
    Arg.(value & opt (some string) None & info [ "advise" ] ~docv:"FILE"
           ~doc:"Run the static plan advisor over $(docv): non-query statements execute \
                 (so DDL and ANALYZE take effect), OUT OF queries are compiled and advised \
                 but never run. Nonzero exit status when any error-severity diagnostic is \
                 reported; warnings and advisories exit 0.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"With $(b,--lint) or $(b,--advise): report diagnostics as a JSON array \
                 instead of text.")
  in
  let data =
    Arg.(value & opt (some string) None & info [ "data" ] ~docv:"DIR" ~env:(Cmd.Env.info "XNF_DATA_DIR")
           ~doc:"Durable session directory: recover $(docv)/checkpoint.db and \
                 $(docv)/wal.log on startup (creating $(docv) if needed) and log all \
                 changes to the WAL. \\\\checkpoint and \\\\recover operate on it.")
  in
  let info =
    Cmd.info "xnf_shell" ~doc:"Interactive SQL/XNF shell"
      ~man:[ `S Manpage.s_description;
             `P "A shared relational database with the XNF composite-object extensions: \
                 plain SQL and OUT OF ... TAKE queries at the same prompt." ]
  in
  Cmd.v info Term.(const main $ demo $ lint $ advise $ json $ data $ file)

let () = exit (Cmdliner.Cmd.eval cmd)
