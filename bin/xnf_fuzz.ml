(* Differential fuzzing driver.

   Modes:
     xnf_fuzz --seed 42 --iters 500            fuzz; shrink + record failures
     xnf_fuzz --replay examples/fuzz-corpus/case-42-7.xnf
     xnf_fuzz --replay-dir examples/fuzz-corpus
     xnf_fuzz --mutate drop-conn --no-shrink   smoke-test: exit 0 iff every
                                               injected defect is caught
     xnf_fuzz --crash --iters 120              crash-point oracle: recover a
                                               durable workload at every WAL
                                               record boundary (+ torn tails)
     xnf_fuzz --crash-defect all               durability smoke: exit 0 iff
                                               every injected defect is caught

   Exit status 0 means no divergence (or, with --mutate / --crash-defect,
   no missed defect); 1 means the harness found something. *)

let print_failure (f : Fuzz.Driver.failure) =
  Printf.printf "FAIL %s [%s]\n" f.Fuzz.Driver.fl_label (String.concat " " f.Fuzz.Driver.fl_kinds);
  Printf.printf "  %s\n" f.Fuzz.Driver.fl_detail;
  (match f.Fuzz.Driver.fl_file with
  | Some p -> Printf.printf "  corpus: %s (replay with: xnf_fuzz --replay %s)\n" p p
  | None ->
    Printf.printf "  -- shrunk scenario --\n";
    List.iter (Printf.printf "  %s\n") f.Fuzz.Driver.fl_scenario.Fuzz.Gen.sc_setup;
    Printf.printf "  %s\n" f.Fuzz.Driver.fl_scenario.Fuzz.Gen.sc_query)

let print_outcome path (o : Fuzz.Oracle.outcome) =
  if o.Fuzz.Oracle.o_divs = [] then begin
    Printf.printf "%s: ok\n" path;
    true
  end
  else begin
    Printf.printf "%s: DIVERGED\n" path;
    List.iter
      (fun d -> Printf.printf "  [%s] %s\n" d.Fuzz.Oracle.d_kind d.Fuzz.Oracle.d_detail)
      o.Fuzz.Oracle.o_divs;
    false
  end

(* the plan-convergence corpus gate (--converge / --converge-defect) *)
let converge_main dir defect =
  let skip_analyze =
    match defect with
    | None -> false
    | Some "stats-drop" -> true
    | Some other ->
      Printf.eprintf "unknown convergence defect %S (expected stats-drop)\n" other;
      exit 2
  in
  let results = Fuzz.Converge.run_dir ~skip_analyze dir in
  if results = [] then begin
    Printf.printf "no convergence groups under %s\n" dir;
    2
  end
  else begin
    let failed = ref 0 in
    List.iter
      (fun (r : Fuzz.Converge.file_result) ->
        if r.Fuzz.Converge.cr_errors = [] then
          Printf.printf "%s: ok (%d formulations, %s)\n" r.Fuzz.Converge.cr_file
            r.Fuzz.Converge.cr_forms
            (Fuzz.Converge.show_set r.Fuzz.Converge.cr_strategies)
        else begin
          incr failed;
          Printf.printf "%s: FAILED\n" r.Fuzz.Converge.cr_file;
          List.iter (Printf.printf "  %s\n") r.Fuzz.Converge.cr_errors
        end)
      results;
    match defect with
    | None ->
      if !failed = 0 then begin
        Printf.printf "%d convergence groups passed\n" (List.length results);
        0
      end
      else begin
        Printf.printf "%d of %d convergence groups failed\n" !failed (List.length results);
        1
      end
    | Some d ->
      (* self-check: with stats dropped, the gate must notice *)
      if !failed > 0 then begin
        Printf.printf "defect %s: caught (%d of %d groups failed as expected)\n" d !failed
          (List.length results);
        0
      end
      else begin
        Printf.printf "defect %s: MISSED (every group still passed without statistics)\n" d;
        1
      end
  end

(* the crash-point oracle and its defect smoke (--crash / --crash-defect) *)
let crash_main seed iters torn crash_points crash_defect quiet =
  let cfg =
    { Fuzz.Crash.default with
      Fuzz.Crash.c_seed = seed; c_ops = iters; c_torn = torn; c_points = crash_points }
  in
  match crash_defect with
  | Some spec ->
    let ds =
      if spec = "all" then Fuzz.Crash.defects
      else
        match Fuzz.Crash.defect_of_string spec with
        | Some d -> [ d ]
        | None ->
          Printf.eprintf
            "unknown durability defect %S (expected skip-fsync, corrupt-crc, drop-checkpoint or \
             all)\n"
            spec;
          exit 2
    in
    let ok = ref true in
    List.iter
      (fun d ->
        let o = Fuzz.Crash.run_defect cfg d in
        if not o.Fuzz.Crash.do_caught then ok := false;
        Printf.printf "defect %-15s %s  (%s)\n"
          (Fuzz.Crash.defect_name o.Fuzz.Crash.do_defect)
          (if o.Fuzz.Crash.do_caught then "caught" else "MISSED")
          o.Fuzz.Crash.do_detail)
      ds;
    if !ok then 0
    else begin
      Printf.printf "durability defect(s) escaped the crash oracle\n";
      1
    end
  | None ->
    let log = if quiet then fun _ -> () else fun s -> Printf.printf "%s\n%!" s in
    let r = Fuzz.Crash.run ~log cfg in
    Printf.printf "crash oracle: %d ops, %d eras, %d crash points (%d torn), seed %d\n"
      r.Fuzz.Crash.r_ops r.Fuzz.Crash.r_eras r.Fuzz.Crash.r_points r.Fuzz.Crash.r_torn_points seed;
    if r.Fuzz.Crash.r_divergences = [] then begin
      Printf.printf "no divergences\n";
      0
    end
    else begin
      List.iter
        (fun d ->
          Printf.printf "DIVERGED era %d offset %d%s: %s\n" d.Fuzz.Crash.d_era
            d.Fuzz.Crash.d_offset
            (if d.Fuzz.Crash.d_torn then " (torn)" else "")
            d.Fuzz.Crash.d_detail)
        r.Fuzz.Crash.r_divergences;
      Printf.printf "%d divergent crash points\n" (List.length r.Fuzz.Crash.r_divergences);
      1
    end

let main seed iters replay replay_dir corpus save_cases mutate no_shrink advise max_nodes max_rows
    quiet crash torn crash_points crash_defect converge converge_defect =
  Check.Pipeline.install ();
  if converge <> None || converge_defect <> None then
    converge_main (Option.value ~default:"examples/converge" converge) converge_defect
  else if crash || crash_defect <> None then
    crash_main seed iters torn crash_points crash_defect quiet
  else
  let mutation =
    match mutate with
    | None -> None
    | Some s -> begin
      match Fuzz.Oracle.mutation_of_string s with
      | Some m -> Some m
      | None ->
        Printf.eprintf "unknown mutation %S (expected drop-conn, drop-tuple or dict-swap)\n" s;
        exit 2
    end
  in
  let log = if quiet then fun _ -> () else fun s -> Printf.printf "%s\n%!" s in
  match (replay, replay_dir, save_cases) with
  | _, _, Some spec ->
    (* seed the regression corpus: render the named cases of this stream
       and persist the clean ones *)
    let dir = Option.value ~default:"examples/fuzz-corpus" corpus in
    let ok = ref true in
    List.iter
      (fun s ->
        let index = int_of_string (String.trim s) in
        let case = Fuzz.Gen.generate ~seed ~index () in
        let sc = Fuzz.Gen.render case in
        let o = Fuzz.Oracle.run ~extra_restr:(Fuzz.Gen.mono_restriction case) sc in
        if o.Fuzz.Oracle.o_divs = [] then
          Printf.printf "saved %s\n" (Fuzz.Corpus.write ~dir sc)
        else begin
          Printf.printf "case %d-%d diverges; not saved\n" seed index;
          ok := false
        end)
      (String.split_on_char ',' spec);
    if !ok then 0 else 1
  | Some path, _, None ->
    if print_outcome path (Fuzz.Driver.replay ~advise ?mutation path) then 0 else 1
  | None, Some dir, None ->
    let results = Fuzz.Driver.replay_dir ~advise ?mutation dir in
    if results = [] then begin
      Printf.printf "no corpus entries under %s\n" dir;
      0
    end
    else begin
      let ok = List.for_all (fun (p, o) -> print_outcome p o) results in
      Printf.printf "%d corpus entries replayed\n" (List.length results);
      if ok then 0 else 1
    end
  | None, None, None ->
    let config =
      { Fuzz.Gen.default with Fuzz.Gen.max_nodes; Fuzz.Gen.max_rows }
    in
    let report =
      Fuzz.Driver.run ~config ~advise ?mutation ?corpus_dir:corpus ~shrink:(not no_shrink) ~log
        ~seed ~iters ()
    in
    Printf.printf "%d cases (seed %d)\n" report.Fuzz.Driver.r_cases seed;
    Printf.printf "coverage:%s\n"
      (String.concat ""
         (List.map (fun (k, n) -> Printf.sprintf " %s=%d" k n) report.Fuzz.Driver.r_coverage));
    (match mutation with
    | Some m ->
      Printf.printf "mutation %s: injected into %d cases, caught in %d\n"
        (Fuzz.Oracle.mutation_name m) report.Fuzz.Driver.r_mutated report.Fuzz.Driver.r_caught;
      if report.Fuzz.Driver.r_mutated = 0 then begin
        Printf.printf "mutation never applied -- nothing verified\n";
        1
      end
      else if report.Fuzz.Driver.r_caught < report.Fuzz.Driver.r_mutated then begin
        Printf.printf "MISSED %d mutated cases\n"
          (report.Fuzz.Driver.r_mutated - report.Fuzz.Driver.r_caught);
        1
      end
      else 0
    | None ->
      List.iter print_failure report.Fuzz.Driver.r_failures;
      if report.Fuzz.Driver.r_failures = [] then begin
        Printf.printf "no divergences\n";
        0
      end
      else begin
        Printf.printf "%d divergent cases (%d shrink attempts)\n"
          (List.length report.Fuzz.Driver.r_failures)
          report.Fuzz.Driver.r_shrink_attempts;
        1
      end)

open Cmdliner

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Stream seed.")
let iters_t = Arg.(value & opt int 200 & info [ "iters" ] ~docv:"N" ~doc:"Cases to generate.")

let replay_t =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc:"Replay one corpus entry.")

let replay_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay-dir" ] ~docv:"DIR" ~doc:"Replay every corpus entry under $(docv).")

let corpus_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus" ] ~docv:"DIR" ~doc:"Write shrunk failing cases under $(docv).")

let save_cases_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-cases" ] ~docv:"I,J,..."
        ~doc:
          "Render the named case indexes of this seed's stream and write them as corpus entries \
           (to --corpus, default examples/fuzz-corpus).")

let mutate_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "mutate" ] ~docv:"KIND"
        ~doc:"Inject a defect (drop-conn or drop-tuple) into every case; exit 0 iff caught.")

let no_shrink_t = Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip failure minimization.")

let advise_t =
  Arg.(
    value
    & flag
    & info [ "advise" ]
        ~doc:
          "Run the static plan advisor on every generated plan and check it is pure: never \
           raises, identical advisories cold vs plan-cache hit, no effect on fetch results.")

let max_nodes_t =
  Arg.(value & opt int Fuzz.Gen.default.Fuzz.Gen.max_nodes
       & info [ "max-nodes" ] ~docv:"N" ~doc:"Node tables per case.")

let max_rows_t =
  Arg.(value & opt int Fuzz.Gen.default.Fuzz.Gen.max_rows
       & info [ "max-rows" ] ~docv:"N" ~doc:"Rows per node table.")

let quiet_t = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress lines.")

let crash_t =
  Arg.(
    value
    & flag
    & info [ "crash" ]
        ~doc:
          "Run the crash-point oracle: execute a seeded durable workload ($(b,--iters) \
           statements), then recover a fresh session from every WAL record boundary (and random \
           torn tails) and check it equals the committed prefix.")

let torn_t =
  Arg.(
    value
    & opt int Fuzz.Crash.default.Fuzz.Crash.c_torn
    & info [ "torn" ] ~docv:"N" ~doc:"Torn (mid-frame) crash offsets per era.")

let crash_points_t =
  Arg.(
    value
    & opt int 0
    & info [ "crash-points" ] ~docv:"N"
        ~doc:"Boundary crash points tested per era, evenly sampled (0 = all).")

let crash_defect_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "crash-defect" ] ~docv:"KIND"
        ~doc:
          "Durability defect smoke: inject $(docv) (skip-fsync, corrupt-crc, drop-checkpoint or \
           all) and exit 0 iff the crash oracle catches it.")

let converge_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "converge" ] ~docv:"DIR"
        ~doc:
          "Run the plan-convergence corpus under $(docv): every group of \
           semantically-equivalent formulations must load identical instances and converge to \
           the same cost-picked strategy set.")

let converge_defect_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "converge-defect" ] ~docv:"KIND"
        ~doc:
          "Convergence-gate self-check: inject $(docv) (stats-drop: run the corpus with ANALYZE \
           statements removed) and exit 0 iff the gate catches the resulting mis-picks.")

let cmd =
  let info =
    Cmd.info "xnf_fuzz" ~doc:"Differential fuzzing of the XNF pipeline against the naive oracles"
  in
  Cmd.v info
    Term.(
      const main $ seed_t $ iters_t $ replay_t $ replay_dir_t $ corpus_t $ save_cases_t $ mutate_t
      $ no_shrink_t $ advise_t $ max_nodes_t $ max_rows_t $ quiet_t $ crash_t $ torn_t
      $ crash_points_t $ crash_defect_t $ converge_t $ converge_defect_t)

let () = exit (Cmdliner.Cmd.eval' cmd)
